(* The probdbd server: a long-lived multi-tenant query daemon.  One
   accept loop; one Domain per connection (sessions need their own Obs
   scopes, which live in domain-local storage); a shared prepared-plan
   cache keyed by Request.fingerprint; per-tenant budgets with admission
   control; a (tenant, request-id) → Guard registry for cross-session
   cancellation; graceful SIGTERM shutdown with socket cleanup.

   The telemetry plane rides on the request boundary: every request gets
   a server-generated correlation id (echoed in the response, stamped
   into log lines and trace span args), and — when the plane is on — its
   latency recorded into the Telemetry registry per (tenant, class,
   outcome) with admission-wait/compile/eval sub-phases.  The plane is
   latched once per request ([t.tel] is an option): with it off the
   request path is the plain PR 8 one. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

type tenant_profile = {
  tp_name : string;
  tp_deadline_ms : float option;
  tp_batch_deadline_ms : float option;
  tp_state_budget : int option;
  tp_sample_budget : int option;
  tp_max_inflight : int;
  tp_fallback : bool;
}

let default_profile =
  { tp_name = "default";
    tp_deadline_ms = None;
    tp_batch_deadline_ms = None;
    tp_state_budget = None;
    tp_sample_budget = None;
    tp_max_inflight = 8;
    tp_fallback = true
  }

(* "name,deadline_ms=500,state_budget=10000,max_inflight=2,fallback=false" *)
let profile_of_spec ~default spec =
  match String.split_on_char ',' spec with
  | [] | [ "" ] -> invalid_arg "empty tenant spec"
  | name :: settings ->
    List.fold_left
      (fun p setting ->
        match String.index_opt setting '=' with
        | None -> invalid_arg (Printf.sprintf "tenant setting %S is not KEY=VALUE" setting)
        | Some i ->
          let k = String.sub setting 0 i in
          let v = String.sub setting (i + 1) (String.length setting - i - 1) in
          let fl () =
            match float_of_string_opt v with
            | Some f -> f
            | None -> invalid_arg (Printf.sprintf "tenant setting %s: bad number %S" k v)
          in
          let int () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> invalid_arg (Printf.sprintf "tenant setting %s: bad integer %S" k v)
          in
          (match k with
           | "deadline_ms" -> { p with tp_deadline_ms = Some (fl ()) }
           | "batch_deadline_ms" -> { p with tp_batch_deadline_ms = Some (fl ()) }
           | "state_budget" -> { p with tp_state_budget = Some (int ()) }
           | "sample_budget" -> { p with tp_sample_budget = Some (int ()) }
           | "max_inflight" -> { p with tp_max_inflight = int () }
           | "fallback" -> { p with tp_fallback = bool_of_string v }
           | _ -> invalid_arg (Printf.sprintf "unknown tenant setting %S" k)))
      { default with tp_name = name } settings

type config = {
  socket : addr;
  max_sessions : int;
  cache_capacity : int;
  default_tenant : tenant_profile;
  tenants : tenant_profile list;
  telemetry : bool;
  state_dir : string option;
  journal_compact_every : int;
  read_deadline_ms : float;
  max_frame : int;
}

let default_config socket =
  { socket;
    max_sessions = 64;
    cache_capacity = 64;
    default_tenant = default_profile;
    tenants = [];
    telemetry = true;
    state_dir = None;
    journal_compact_every = 64;
    read_deadline_ms = 10_000.;
    max_frame = 1 lsl 20
  }

type t = {
  cfg : config;
  sockaddr : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  cache : Request.cache;
  programs_mu : Mutex.t;
  programs : (string * string, string) Hashtbl.t;  (* (tenant, name) -> source *)
  inflight_mu : Mutex.t;
  inflight : (string * string, Guard.t) Hashtbl.t;  (* (tenant, request id) *)
  tenant_mu : Mutex.t;
  tenant_inflight : (string, int) Hashtbl.t;
  tenant_served : (string, int) Hashtbl.t;
  sessions : int Atomic.t;
  served : int Atomic.t;
  conns_mu : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable workers : (unit Domain.t * bool Atomic.t) list;
  started_ns : int;
  tel : Telemetry.t option;
  corr_seq : int Atomic.t;
  journal : Journal.t option;
  fault : Guard.Fault.spec;
  (* Idempotency dedup: (tenant, idem key) → the response document already
     sent for that key, FIFO-bounded.  A retried request whose first
     attempt completed gets the stored response verbatim — same corr, same
     payload — instead of re-executing. *)
  idem_mu : Mutex.t;
  idem_tbl : (string * string, Obs.Json.t) Hashtbl.t;
  idem_order : (string * string) Queue.t;
}

let idem_capacity = 4096

(* A unix-socket path with no listener behind it (crashed server) is
   removed; a live listener is a hard error; anything else at the path is
   not ours to delete. *)
let cleanup_stale_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (e, _, _) -> `Other (Unix.error_message e)
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match verdict with
    | `Live -> failwith (Printf.sprintf "%s: a server is already listening" path)
    | `Stale ->
      prerr_endline (Printf.sprintf "probdbd: removing stale socket %s" path);
      (try Sys.remove path with Sys_error _ -> ())
    | `Gone -> ()
    | `Other msg -> failwith (Printf.sprintf "%s: cannot probe socket: %s" path msg)
  end

let create cfg =
  let sockaddr, fd =
    match cfg.socket with
    | Unix_sock path ->
      cleanup_stale_socket path;
      (Unix.ADDR_UNIX path, Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
    | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (Unix.ADDR_INET (addr, port), fd)
  in
  (try Unix.bind fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  let fault = Guard.Fault.of_env () in
  (* Durable state: open (and replay) the journal before accepting a
     single connection, so every session sees the recovered programs. *)
  let journal, replayed =
    match cfg.state_dir with
    | None -> (None, [])
    | Some dir ->
      let j, entries, _replay =
        Journal.open_ ~fault ~compact_every:cfg.journal_compact_every ~dir ()
      in
      (Some j, entries)
  in
  let programs = Hashtbl.create 16 in
  List.iter
    (fun (e : Journal.entry) ->
      Hashtbl.replace programs (e.Journal.tenant, e.Journal.name)
        e.Journal.source)
    replayed;
  { cfg;
    sockaddr;
    listen_fd = fd;
    stop = Atomic.make false;
    cache = Request.make_cache ~capacity:cfg.cache_capacity ();
    programs_mu = Mutex.create ();
    programs;
    inflight_mu = Mutex.create ();
    inflight = Hashtbl.create 16;
    tenant_mu = Mutex.create ();
    tenant_inflight = Hashtbl.create 8;
    tenant_served = Hashtbl.create 8;
    sessions = Atomic.make 0;
    served = Atomic.make 0;
    conns_mu = Mutex.create ();
    conns = [];
    workers = [];
    started_ns = Obs.now_ns ();
    tel = (if cfg.telemetry then Some (Telemetry.create ()) else None);
    corr_seq = Atomic.make 0;
    journal;
    fault;
    idem_mu = Mutex.create ();
    idem_tbl = Hashtbl.create 64;
    idem_order = Queue.create ()
  }

(* Correlation ids: a per-process tag (low bits of the start time, so two
   daemon generations never collide in merged logs) plus a dense sequence
   number.  The sequence number alone fits a trace span's integer args;
   the full string goes into responses and log lines. *)
let next_corr t =
  let seq = Atomic.fetch_and_add t.corr_seq 1 in
  (Printf.sprintf "%08x-%d" (t.started_ns land 0xffffffff) seq, seq)

let tenant_profile t name =
  match List.find_opt (fun p -> p.tp_name = name) t.cfg.tenants with
  | Some p -> p
  | None -> { t.cfg.default_tenant with tp_name = name }

(* --- request handling ----------------------------------------------------- *)

(* Per-tenant admission: at most [tp_max_inflight] concurrently executing
   queries per tenant; excess requests are refused immediately rather than
   queued, so one tenant cannot occupy every session domain. *)
let admit t prof f =
  let admitted =
    Mutex.protect t.tenant_mu (fun () ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight prof.tp_name) in
        if cur >= prof.tp_max_inflight then false
        else begin
          Hashtbl.replace t.tenant_inflight prof.tp_name (cur + 1);
          true
        end)
  in
  if not admitted then
    Error
      (Printf.sprintf "admission: tenant %S at capacity (%d requests in flight)"
         prof.tp_name prof.tp_max_inflight)
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.tenant_mu (fun () ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight prof.tp_name) in
            Hashtbl.replace t.tenant_inflight prof.tp_name (max 0 (cur - 1))))
      (fun () -> Ok (f ()))

let resolve_source t tenant (q : Proto.query) =
  match (q.q_source, q.q_name) with
  | Some src, _ -> Ok src
  | None, Some name -> (
    match Mutex.protect t.programs_mu (fun () -> Hashtbl.find_opt t.programs (tenant, name)) with
    | Some src -> Ok src
    | None -> Error (Printf.sprintf "no program %S loaded for tenant %S" name tenant))
  | None, None -> Error "query needs \"source\" or \"name\""

let register_inflight t tenant id guard =
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.replace t.inflight (tenant, id) guard)

let unregister_inflight t tenant id =
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.remove t.inflight (tenant, id))

let run_query t ~tenant ~id ~corr ~corr_seq (q : Proto.query) =
  let prof = tenant_profile t tenant in
  let clazz = Proto.clazz_slug q.q_class in
  let t_recv = Obs.now_ns () in
  (* The telemetry latch: one option match per request.  With the plane
     off, [record] is a constant no-op and the path below is the plain
     uninstrumented one. *)
  let record ~outcome ~wait_ns ~compile_ns ~eval_ns ~cache_hit ~degraded =
    match t.tel with
    | None -> ()
    | Some tel ->
      Telemetry.record tel ~tenant ~clazz ~outcome
        ~total_ns:(max 0 (Obs.now_ns () - t_recv))
        ~wait_ns ~compile_ns ~eval_ns ~cache_hit ~degraded
  in
  let fail ~outcome ~code m =
    record ~outcome ~wait_ns:0 ~compile_ns:0 ~eval_ns:0 ~cache_hit:None ~degraded:false;
    Proto.error_response ~id ~corr ~code m
  in
  match resolve_source t tenant q with
  | Error m ->
    let code =
      if q.Proto.q_source = None && q.Proto.q_name <> None then
        Proto.code_not_found
      else Proto.code_bad_request
    in
    fail ~outcome:Telemetry.Errored ~code m
  | Ok source -> (
    match Proto.method_of_query q with
    | Error m -> fail ~outcome:Telemetry.Errored ~code:Proto.code_bad_request m
    | Ok method_ -> (
      let spec =
        { Request.source;
          semantics = q.q_semantics;
          method_;
          optimize = q.q_optimize;
          plan = not q.q_interpreted;
          strategy = (if q.q_naive then Eval.Engine.Naive else Eval.Engine.Semi_naive);
          magic = q.q_magic
        }
      in
      let deadline_ms =
        match q.q_class with
        | Proto.Interactive -> prof.tp_deadline_ms
        | Proto.Batch -> prof.tp_batch_deadline_ms
      in
      (* Always an active guard: budgets may all be absent, but cancel
         needs checkers in the hot loop. *)
      let guard =
        Guard.make ?deadline_ms ?max_states:prof.tp_state_budget
          ?max_samples:prof.tp_sample_budget ()
      in
      (* Degradation per request class: interactive work falls back to the
         sampler when an exact run blows the tenant's state budget (the
         client wants an answer now); batch work degrades to a partial
         report it can retry with room to spare. *)
      let on_budget =
        match q.q_class with
        | Proto.Interactive when prof.tp_fallback ->
          Eval.Engine.Fallback { eps = q.q_eps; delta = q.q_delta; burn_in = q.q_burn_in }
        | _ -> Eval.Engine.Degrade
      in
      match
        admit t prof (fun () ->
            let wait_ns = max 0 (Obs.now_ns () - t_recv) in
            register_inflight t tenant id guard;
            Fun.protect
              ~finally:(fun () -> unregister_inflight t tenant id)
              (fun () ->
                (* Every request runs in a fresh Obs scope: counters,
                   phases, series and trace buffers from concurrent
                   tenants never bleed into each other, and worker domains
                   spawned by the pool inherit this scope. *)
                let scope = Obs.Scope.make () in
                Obs.Scope.run scope (fun () ->
                    if q.q_stats then Obs.set_enabled true;
                    if q.q_trace then Obs.Trace.set_enabled true;
                    let t0 = Obs.now_ns () in
                    let prep, hit, compile_ns = Request.prepare_timed ~cache:t.cache spec in
                    let t1 = Obs.now_ns () in
                    let report =
                      Eval.Engine.execute ~seed:q.q_seed ~max_states:q.q_max_states
                        ?max_steps:q.q_max_steps ?domains:q.q_domains ~guard ~on_budget
                        ~stats:q.q_stats prep
                    in
                    let t2 = Obs.now_ns () in
                    let trace =
                      if not q.q_trace then None
                      else begin
                        (* The request as one enclosing span with the
                           correlation sequence in its args, so the
                           exported trace joins the response's "corr" and
                           the server's log line. *)
                        Obs.Trace.complete ~args:[ ("corr_seq", corr_seq) ] ~t0
                          ~dur:(t2 - t0) "request";
                        Some (Obs.Trace.json ())
                      end
                    in
                    (report, hit, Obs.ms_of_ns (t2 - t0), wait_ns, compile_ns,
                     max 0 (t2 - t1), trace))))
      with
      | Error m ->
        record ~outcome:Telemetry.Refused ~wait_ns:0 ~compile_ns:0 ~eval_ns:0
          ~cache_hit:None ~degraded:false;
        Proto.error_response ~id ~corr ~code:Proto.code_capacity m
      | Ok (report, hit, elapsed_ms, wait_ns, compile_ns, eval_ns, trace) ->
        Atomic.incr t.served;
        Mutex.protect t.tenant_mu (fun () ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_served tenant) in
            Hashtbl.replace t.tenant_served tenant (cur + 1));
        let outcome =
          match report.Eval.Engine.outcome with
          | Eval.Engine.Complete -> Telemetry.Complete
          | Eval.Engine.Partial _ -> Telemetry.Partial
        in
        record ~outcome ~wait_ns ~compile_ns ~eval_ns ~cache_hit:(Some hit)
          ~degraded:(report.Eval.Engine.downgrade <> None);
        Proto.response ~id ~corr
          ([ ("tenant", Obs.Json.Str tenant);
             ("class", Obs.Json.Str clazz);
             ("cache", Obs.Json.Str (if hit then "hit" else "miss"));
             ("elapsed_ms", Obs.Json.Float elapsed_ms);
             ("report", Eval.Engine.json_of_report ~tool:"probdbd" report)
           ]
          @ match trace with None -> [] | Some tj -> [ ("trace", tj) ])
      | exception Eval.Engine.Engine_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m
      | exception Lang.Parser.Parse_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m
      | exception Lang.Datalog.Datalog_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m
      | exception Lang.Compile.Compile_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m
      | exception Prob.Ctable.Ctable_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m
      | exception Markov.Chain.Chain_error m ->
        fail ~outcome:Telemetry.Errored ~code:Proto.code_eval m))

let stats_response t ~id ~corr =
  let hits, misses, entries = Request.cache_stats t.cache in
  let strings, rationals = Relational.Value.Intern.stats () in
  let tenants =
    Mutex.protect t.tenant_mu (fun () ->
        let names =
          List.sort_uniq String.compare
            (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_inflight []
            @ Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_served [])
        in
        List.map
          (fun name ->
            ( name,
              Obs.Json.Obj
                [ ( "inflight",
                    Obs.Json.Int
                      (Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight name)) );
                  ( "served",
                    Obs.Json.Int
                      (Option.value ~default:0 (Hashtbl.find_opt t.tenant_served name)) )
                ] ))
          names)
  in
  Proto.response ~id ~corr
    [ ( "stats",
        Obs.Json.Obj
          ([ ("uptime_ms", Obs.Json.Float (Obs.ms_of_ns (Obs.now_ns () - t.started_ns)));
            ("sessions", Obs.Json.Int (Atomic.get t.sessions));
            ("served", Obs.Json.Int (Atomic.get t.served));
            ( "plan_cache",
              Obs.Json.Obj
                [ ("hits", Obs.Json.Int hits);
                  ("misses", Obs.Json.Int misses);
                  ("entries", Obs.Json.Int entries)
                ] );
            ( "intern",
              Obs.Json.Obj
                [ ("strings", Obs.Json.Int strings); ("rationals", Obs.Json.Int rationals) ] );
            ("tenants", Obs.Json.Obj tenants)
           ]
          @
          match t.journal with
          | None -> []
          | Some j ->
            [ ( "journal",
                Obs.Json.Obj
                  (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (Journal.stats j))
              )
            ]) )
    ]

let metrics_response t ~id ~corr =
  match t.tel with
  | None ->
    Proto.error_response ~id ~corr ~code:Proto.code_bad_request
      "metrics: telemetry plane is disabled"
  | Some tel ->
    let hits, misses, entries = Request.cache_stats t.cache in
    let inflight =
      Mutex.protect t.tenant_mu (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tenant_inflight [])
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let journal =
      match t.journal with None -> [] | Some j -> Journal.stats j
    in
    let doc, text =
      Telemetry.render tel ~journal
        ~uptime_ms:(Obs.ms_of_ns (Obs.now_ns () - t.started_ns))
        ~sessions:(Atomic.get t.sessions)
        ~served:(Atomic.get t.served)
        ~inflight ~cache:(hits, misses, entries) ()
    in
    Proto.response ~id ~corr [ ("metrics", doc); ("prometheus", Obs.Json.Str text) ]

let op_slug = function
  | Proto.Load _ -> "load"
  | Proto.Query _ -> "query"
  | Proto.Stats -> "stats"
  | Proto.Metrics -> "metrics"
  | Proto.Cancel _ -> "cancel"
  | Proto.Ping -> "ping"

(* Idempotency dedup table: FIFO-bounded, keyed (tenant, idem). *)
let idem_find t tenant key =
  Mutex.protect t.idem_mu (fun () -> Hashtbl.find_opt t.idem_tbl (tenant, key))

let idem_store t tenant key resp =
  Mutex.protect t.idem_mu (fun () ->
      let k = (tenant, key) in
      if not (Hashtbl.mem t.idem_tbl k) then begin
        Hashtbl.replace t.idem_tbl k resp;
        Queue.push k t.idem_order;
        if Queue.length t.idem_order > idem_capacity then
          Hashtbl.remove t.idem_tbl (Queue.pop t.idem_order)
      end)

let handle_line t line =
  let corr, corr_seq = next_corr t in
  let t0 = Obs.now_ns () in
  (* One structured log line per request, whatever the op or outcome —
     the latch is per request, so a sink installed mid-flight applies from
     the next request on. *)
  let finish ~id ~tenant ~op resp =
    if Obs.Log.enabled Obs.Log.Info then begin
      let fields = match resp with Obs.Json.Obj fs -> fs | _ -> [] in
      let ok =
        match List.assoc_opt "ok" fields with Some (Obs.Json.Bool b) -> b | _ -> false
      in
      let error =
        match List.assoc_opt "error" fields with
        | Some (Obs.Json.Str m) -> [ ("error", Obs.Json.Str m) ]
        | _ -> []
      in
      Obs.Log.log
        (if ok then Obs.Log.Info else Obs.Log.Warn)
        "request"
        ([ ("corr", Obs.Json.Str corr);
           ("id", Obs.Json.Str id);
           ("tenant", Obs.Json.Str tenant);
           ("op", Obs.Json.Str op);
           ("ok", Obs.Json.Bool ok);
           ("elapsed_ms", Obs.Json.Float (Obs.ms_of_ns (Obs.now_ns () - t0)))
         ]
        @ error)
    end;
    resp
  in
  match Proto.parse_request line with
  | Error m ->
    finish ~id:"" ~tenant:"" ~op:"parse"
      (Proto.error_response ~id:"" ~corr ~code:Proto.code_bad_request m)
  | Ok { Proto.id; tenant; idem; req } -> (
    (* Dedup first: a retried request whose first attempt already
       completed gets the stored response verbatim (same corr), without
       re-executing — the contract that makes client-side re-issue safe
       even for [load]. *)
    match
      match idem with None -> None | Some key -> idem_find t tenant key
    with
    | Some stored -> finish ~id ~tenant ~op:(op_slug req) stored
    | None ->
      let resp =
        (* No exception may escape a request: anything unexpected becomes
           a [code_internal] error response and the session loop lives on.
           The one deliberate exception is [Guard.Fault.Injected] — the
           chaos harness's simulated crash must propagate. *)
        try
          match req with
          | Proto.Load { name; source } -> (
          match
            try Ok (Lang.Parser.parse source) with
            | Lang.Parser.Parse_error m | Lang.Datalog.Datalog_error m -> Error m
            | Prob.Ctable.Ctable_error m -> Error m
          with
          | Error m -> Proto.error_response ~id ~corr ~code:Proto.code_eval m
          | Ok parsed -> (
            (* Durability: the record is framed, written and fsynced
               before the in-memory table changes and before the ack —
               an acked load is always recoverable, and a journal
               failure applies nothing. *)
            match
              match t.journal with
              | None -> Ok ()
              | Some j -> (
                try Ok (Journal.append j { Journal.tenant; name; source })
                with Journal.Error m -> Error m)
            with
            | Error m ->
              Proto.error_response ~id ~corr ~code:Proto.code_journal
                (Printf.sprintf "journal: %s" m)
            | Ok () ->
              Mutex.protect t.programs_mu (fun () ->
                  Hashtbl.replace t.programs (tenant, name) source);
              Proto.response ~id ~corr
                [ ("loaded", Obs.Json.Str name);
                  ("rules", Obs.Json.Int (List.length parsed.Lang.Parser.program));
                  ("facts", Obs.Json.Int (List.length parsed.Lang.Parser.facts))
                ]))
        | Proto.Query q -> run_query t ~tenant ~id ~corr ~corr_seq q
        | Proto.Stats -> stats_response t ~id ~corr
        | Proto.Metrics -> metrics_response t ~id ~corr
        | Proto.Cancel { target } ->
          let found =
            Mutex.protect t.inflight_mu (fun () ->
                match Hashtbl.find_opt t.inflight (tenant, target) with
                | Some g ->
                  Guard.cancel g;
                  true
                | None -> false)
          in
          Proto.response ~id ~corr [ ("cancelled", Obs.Json.Bool found) ]
        | Proto.Ping ->
          Proto.response ~id ~corr
            [ ("pong", Obs.Json.Bool true);
              ( "uptime_ms",
                Obs.Json.Float (Obs.ms_of_ns (Obs.now_ns () - t.started_ns)) )
            ]
        with
        | Guard.Fault.Injected _ as e -> raise e
        | e ->
          Proto.error_response ~id ~corr ~code:Proto.code_internal
            (Printf.sprintf "internal error: %s" (Printexc.to_string e))
      in
      (match idem with
       | Some key -> idem_store t tenant key resp
       | None -> ());
      finish ~id ~tenant ~op:(op_slug req) resp)

(* --- sessions ------------------------------------------------------------- *)

let track_conn t fd = Mutex.protect t.conns_mu (fun () -> t.conns <- fd :: t.conns)

let untrack_conn t fd =
  Mutex.protect t.conns_mu (fun () -> t.conns <- List.filter (fun c -> c != fd) t.conns)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

type read_outcome =
  | RLine of string
  | REof
  | RToo_long
  | RTimed_out

(* Raw-fd line reader with a frame bound and a per-frame read deadline.
   The deadline clock starts at the first byte of a frame — an idle
   connection with an empty buffer blocks indefinitely, exactly like the
   channel reader it replaces; a connection that starts a line and stalls
   (slow loris) is timed out.  The frame bound caps the bytes a single
   request may occupy before the server answers [frame_too_large] and
   closes — no unbounded buffering, no resync attempt. *)
let make_reader fd ~max_frame ~deadline_ms =
  let chunk_len = 8192 in
  let chunk = Bytes.create chunk_len in
  let acc = Buffer.create 256 in
  let lines = Queue.create () in
  let drain_acc () =
    let s = Buffer.contents acc in
    match String.rindex_opt s '\n' with
    | None -> ()
    | Some last ->
      Buffer.clear acc;
      Buffer.add_substring acc s (last + 1) (String.length s - last - 1);
      List.iter
        (fun l -> Queue.push l lines)
        (String.split_on_char '\n' (String.sub s 0 last))
  in
  let pop () =
    let l = Queue.pop lines in
    if String.length l > max_frame then RToo_long else RLine l
  in
  fun () ->
    if not (Queue.is_empty lines) then pop ()
    else begin
      let started =
        ref (if Buffer.length acc > 0 then Some (Obs.now_ns ()) else None)
      in
      let rec loop () =
        if not (Queue.is_empty lines) then pop ()
        else if Buffer.length acc > max_frame then RToo_long
        else begin
          let timeout =
            match !started with
            | None -> -1.0 (* block: no partial frame, no deadline *)
            | Some t0 -> (deadline_ms -. Obs.ms_of_ns (Obs.now_ns () - t0)) /. 1e3
          in
          if !started <> None && timeout <= 0. then RTimed_out
          else
            match Unix.select [ fd ] [] [] timeout with
            | [], _, _ -> RTimed_out
            | _ -> (
              match Unix.read fd chunk 0 chunk_len with
              | 0 -> REof
              | n ->
                if !started = None then started := Some (Obs.now_ns ());
                Buffer.add_subbytes acc chunk 0 n;
                drain_acc ();
                loop ())
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        end
      in
      loop ()
    end

(* The response write path, with the serve-layer chaos faults injected
   exactly here: a delayed response sleeps first, a partial write sends a
   torn prefix and hangs up, a connection drop hangs up after the write —
   all downstream of request execution, so the server state a client
   observes after a fault is the committed one. *)
let deliver t ~written fd resp =
  (match Guard.Fault.resp_delay_ms t.fault with
   | Some ms -> Unix.sleepf (ms /. 1000.)
   | None -> ());
  let line = Obs.Json.to_string resp ^ "\n" in
  match Guard.Fault.partial_write t.fault with
  | Some after when !written >= after ->
    write_all fd (String.sub line 0 ((String.length line + 1) / 2));
    `Drop
  | _ ->
    write_all fd line;
    incr written;
    (match Guard.Fault.conn_drop t.fault with
     | Some after when !written >= after -> `Drop
     | _ -> `Ok)

let session t fd =
  let next_line =
    make_reader fd ~max_frame:t.cfg.max_frame
      ~deadline_ms:t.cfg.read_deadline_ms
  in
  let written = ref 0 in
  (try
     let continue = ref true in
     while !continue && not (Atomic.get t.stop) do
       match next_line () with
       | RLine "" -> ()
       | RLine line -> (
         match handle_line t line with
         | resp -> (
           match deliver t ~written fd resp with
           | `Ok -> ()
           | `Drop -> continue := false)
         | exception Guard.Fault.Injected _ ->
           (* Simulated crash: the connection dies without a response,
              exactly what a SIGKILL mid-request looks like from outside. *)
           continue := false)
       | REof -> continue := false
       | RToo_long ->
         ignore
           (deliver t ~written fd
              (Proto.error_response ~id:"" ~code:Proto.code_frame_too_large
                 (Printf.sprintf "frame exceeds %d bytes" t.cfg.max_frame)));
         continue := false
       | RTimed_out ->
         ignore
           (deliver t ~written fd
              (Proto.error_response ~id:"" ~code:Proto.code_timeout
                 (Printf.sprintf "read deadline (%.0f ms) expired mid-frame"
                    t.cfg.read_deadline_ms)));
         continue := false
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  untrack_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr t.sessions

let refuse fd msg =
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc (Obs.Json.to_string (Proto.error_response ~id:"" msg));
     output_char oc '\n';
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Join worker domains whose session has finished; called opportunistically
   from the accept loop so a long-lived daemon does not accumulate handles. *)
let reap t =
  let finished, live =
    Mutex.protect t.conns_mu (fun () ->
        let f, l = List.partition (fun (_, done_) -> Atomic.get done_) t.workers in
        t.workers <- l;
        (f, l))
  in
  ignore live;
  List.iter (fun (d, _) -> Domain.join d) finished

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* Wake the accept loop with a throwaway connection; it observes the
       stop flag and exits. *)
    try
      let fd =
        Unix.socket (Unix.domain_of_sockaddr t.sockaddr) Unix.SOCK_STREAM 0
      in
      (try Unix.connect fd t.sockaddr with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    with Unix.Unix_error _ -> ()
  end

let serve_forever t =
  (* A client hanging up mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try
     while not (Atomic.get t.stop) do
       match Unix.accept t.listen_fd with
       | fd, _ ->
         if Atomic.get t.stop then (try Unix.close fd with Unix.Unix_error _ -> ())
         else if Atomic.get t.sessions >= t.cfg.max_sessions then
           refuse fd
             (Printf.sprintf "admission: server at capacity (%d sessions)" t.cfg.max_sessions)
         else begin
           Atomic.incr t.sessions;
           track_conn t fd;
           let done_ = Atomic.make false in
           let d =
             Domain.spawn (fun () ->
                 Fun.protect ~finally:(fun () -> Atomic.set done_ true) (fun () -> session t fd))
           in
           Mutex.protect t.conns_mu (fun () -> t.workers <- (d, done_) :: t.workers);
           reap t
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error _ when Atomic.get t.stop -> ());
  (* Drain: close the listener, nudge every live session off its blocking
     read, join all workers, remove the socket file. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_mu (fun () ->
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  let workers = Mutex.protect t.conns_mu (fun () ->
      let w = t.workers in
      t.workers <- [];
      w)
  in
  List.iter (fun (d, _) -> Domain.join d) workers;
  (match t.journal with Some j -> Journal.close j | None -> ());
  match t.cfg.socket with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
