(* The probdbd server: a long-lived multi-tenant query daemon.  One
   accept loop; one Domain per connection (sessions need their own Obs
   scopes, which live in domain-local storage); a shared prepared-plan
   cache keyed by Request.fingerprint; per-tenant budgets with admission
   control; a (tenant, request-id) → Guard registry for cross-session
   cancellation; graceful SIGTERM shutdown with socket cleanup. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

type tenant_profile = {
  tp_name : string;
  tp_deadline_ms : float option;
  tp_batch_deadline_ms : float option;
  tp_state_budget : int option;
  tp_sample_budget : int option;
  tp_max_inflight : int;
  tp_fallback : bool;
}

let default_profile =
  { tp_name = "default";
    tp_deadline_ms = None;
    tp_batch_deadline_ms = None;
    tp_state_budget = None;
    tp_sample_budget = None;
    tp_max_inflight = 8;
    tp_fallback = true
  }

(* "name,deadline_ms=500,state_budget=10000,max_inflight=2,fallback=false" *)
let profile_of_spec ~default spec =
  match String.split_on_char ',' spec with
  | [] | [ "" ] -> invalid_arg "empty tenant spec"
  | name :: settings ->
    List.fold_left
      (fun p setting ->
        match String.index_opt setting '=' with
        | None -> invalid_arg (Printf.sprintf "tenant setting %S is not KEY=VALUE" setting)
        | Some i ->
          let k = String.sub setting 0 i in
          let v = String.sub setting (i + 1) (String.length setting - i - 1) in
          let fl () =
            match float_of_string_opt v with
            | Some f -> f
            | None -> invalid_arg (Printf.sprintf "tenant setting %s: bad number %S" k v)
          in
          let int () =
            match int_of_string_opt v with
            | Some n -> n
            | None -> invalid_arg (Printf.sprintf "tenant setting %s: bad integer %S" k v)
          in
          (match k with
           | "deadline_ms" -> { p with tp_deadline_ms = Some (fl ()) }
           | "batch_deadline_ms" -> { p with tp_batch_deadline_ms = Some (fl ()) }
           | "state_budget" -> { p with tp_state_budget = Some (int ()) }
           | "sample_budget" -> { p with tp_sample_budget = Some (int ()) }
           | "max_inflight" -> { p with tp_max_inflight = int () }
           | "fallback" -> { p with tp_fallback = bool_of_string v }
           | _ -> invalid_arg (Printf.sprintf "unknown tenant setting %S" k)))
      { default with tp_name = name } settings

type config = {
  socket : addr;
  max_sessions : int;
  cache_capacity : int;
  default_tenant : tenant_profile;
  tenants : tenant_profile list;
}

let default_config socket =
  { socket;
    max_sessions = 64;
    cache_capacity = 64;
    default_tenant = default_profile;
    tenants = []
  }

type t = {
  cfg : config;
  sockaddr : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  cache : Request.cache;
  programs_mu : Mutex.t;
  programs : (string * string, string) Hashtbl.t;  (* (tenant, name) -> source *)
  inflight_mu : Mutex.t;
  inflight : (string * string, Guard.t) Hashtbl.t;  (* (tenant, request id) *)
  tenant_mu : Mutex.t;
  tenant_inflight : (string, int) Hashtbl.t;
  tenant_served : (string, int) Hashtbl.t;
  sessions : int Atomic.t;
  served : int Atomic.t;
  conns_mu : Mutex.t;
  mutable conns : Unix.file_descr list;
  mutable workers : (unit Domain.t * bool Atomic.t) list;
  started_ns : int;
}

(* A unix-socket path with no listener behind it (crashed server) is
   removed; a live listener is a hard error; anything else at the path is
   not ours to delete. *)
let cleanup_stale_socket path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let verdict =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> `Live
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Stale
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
      | exception Unix.Unix_error (e, _, _) -> `Other (Unix.error_message e)
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match verdict with
    | `Live -> failwith (Printf.sprintf "%s: a server is already listening" path)
    | `Stale ->
      prerr_endline (Printf.sprintf "probdbd: removing stale socket %s" path);
      (try Sys.remove path with Sys_error _ -> ())
    | `Gone -> ()
    | `Other msg -> failwith (Printf.sprintf "%s: cannot probe socket: %s" path msg)
  end

let create cfg =
  let sockaddr, fd =
    match cfg.socket with
    | Unix_sock path ->
      cleanup_stale_socket path;
      (Unix.ADDR_UNIX path, Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0)
    | Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (Unix.ADDR_INET (addr, port), fd)
  in
  (try Unix.bind fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 64;
  { cfg;
    sockaddr;
    listen_fd = fd;
    stop = Atomic.make false;
    cache = Request.make_cache ~capacity:cfg.cache_capacity ();
    programs_mu = Mutex.create ();
    programs = Hashtbl.create 16;
    inflight_mu = Mutex.create ();
    inflight = Hashtbl.create 16;
    tenant_mu = Mutex.create ();
    tenant_inflight = Hashtbl.create 8;
    tenant_served = Hashtbl.create 8;
    sessions = Atomic.make 0;
    served = Atomic.make 0;
    conns_mu = Mutex.create ();
    conns = [];
    workers = [];
    started_ns = Obs.now_ns ()
  }

let tenant_profile t name =
  match List.find_opt (fun p -> p.tp_name = name) t.cfg.tenants with
  | Some p -> p
  | None -> { t.cfg.default_tenant with tp_name = name }

(* --- request handling ----------------------------------------------------- *)

(* Per-tenant admission: at most [tp_max_inflight] concurrently executing
   queries per tenant; excess requests are refused immediately rather than
   queued, so one tenant cannot occupy every session domain. *)
let admit t prof f =
  let admitted =
    Mutex.protect t.tenant_mu (fun () ->
        let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight prof.tp_name) in
        if cur >= prof.tp_max_inflight then false
        else begin
          Hashtbl.replace t.tenant_inflight prof.tp_name (cur + 1);
          true
        end)
  in
  if not admitted then
    Error
      (Printf.sprintf "admission: tenant %S at capacity (%d requests in flight)"
         prof.tp_name prof.tp_max_inflight)
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect t.tenant_mu (fun () ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight prof.tp_name) in
            Hashtbl.replace t.tenant_inflight prof.tp_name (max 0 (cur - 1))))
      (fun () -> Ok (f ()))

let resolve_source t tenant (q : Proto.query) =
  match (q.q_source, q.q_name) with
  | Some src, _ -> Ok src
  | None, Some name -> (
    match Mutex.protect t.programs_mu (fun () -> Hashtbl.find_opt t.programs (tenant, name)) with
    | Some src -> Ok src
    | None -> Error (Printf.sprintf "no program %S loaded for tenant %S" name tenant))
  | None, None -> Error "query needs \"source\" or \"name\""

let register_inflight t tenant id guard =
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.replace t.inflight (tenant, id) guard)

let unregister_inflight t tenant id =
  Mutex.protect t.inflight_mu (fun () -> Hashtbl.remove t.inflight (tenant, id))

let run_query t ~tenant ~id (q : Proto.query) =
  let prof = tenant_profile t tenant in
  match resolve_source t tenant q with
  | Error m -> Proto.error_response ~id m
  | Ok source -> (
    match Proto.method_of_query q with
    | Error m -> Proto.error_response ~id m
    | Ok method_ -> (
      let spec =
        { Request.source;
          semantics = q.q_semantics;
          method_;
          optimize = q.q_optimize;
          plan = not q.q_interpreted;
          strategy = (if q.q_naive then Eval.Engine.Naive else Eval.Engine.Semi_naive);
          magic = q.q_magic
        }
      in
      let deadline_ms =
        match q.q_class with
        | Proto.Interactive -> prof.tp_deadline_ms
        | Proto.Batch -> prof.tp_batch_deadline_ms
      in
      (* Always an active guard: budgets may all be absent, but cancel
         needs checkers in the hot loop. *)
      let guard =
        Guard.make ?deadline_ms ?max_states:prof.tp_state_budget
          ?max_samples:prof.tp_sample_budget ()
      in
      (* Degradation per request class: interactive work falls back to the
         sampler when an exact run blows the tenant's state budget (the
         client wants an answer now); batch work degrades to a partial
         report it can retry with room to spare. *)
      let on_budget =
        match q.q_class with
        | Proto.Interactive when prof.tp_fallback ->
          Eval.Engine.Fallback { eps = q.q_eps; delta = q.q_delta; burn_in = q.q_burn_in }
        | _ -> Eval.Engine.Degrade
      in
      match
        admit t prof (fun () ->
            register_inflight t tenant id guard;
            Fun.protect
              ~finally:(fun () -> unregister_inflight t tenant id)
              (fun () ->
                (* Every request runs in a fresh Obs scope: counters and
                   phases from concurrent tenants never bleed into each
                   other's stats, and worker domains spawned by the pool
                   inherit this scope. *)
                let scope = Obs.Scope.make () in
                Obs.Scope.run scope (fun () ->
                    if q.q_stats then Obs.set_enabled true;
                    let t0 = Obs.now_ns () in
                    let prep, hit = Request.prepare ~cache:t.cache spec in
                    let report =
                      Eval.Engine.execute ~seed:q.q_seed ~max_states:q.q_max_states
                        ?max_steps:q.q_max_steps ?domains:q.q_domains ~guard ~on_budget
                        ~stats:q.q_stats prep
                    in
                    let elapsed_ms = Obs.ms_of_ns (Obs.now_ns () - t0) in
                    (report, hit, elapsed_ms))))
      with
      | Error m -> Proto.error_response ~id m
      | Ok (report, hit, elapsed_ms) ->
        Atomic.incr t.served;
        Mutex.protect t.tenant_mu (fun () ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt t.tenant_served tenant) in
            Hashtbl.replace t.tenant_served tenant (cur + 1));
        Proto.response ~id
          [ ("tenant", Obs.Json.Str tenant);
            ("class", Obs.Json.Str (Proto.clazz_slug q.q_class));
            ("cache", Obs.Json.Str (if hit then "hit" else "miss"));
            ("elapsed_ms", Obs.Json.Float elapsed_ms);
            ("report", Eval.Engine.json_of_report ~tool:"probdbd" report)
          ]
      | exception Eval.Engine.Engine_error m -> Proto.error_response ~id m
      | exception Lang.Parser.Parse_error m -> Proto.error_response ~id m
      | exception Lang.Datalog.Datalog_error m -> Proto.error_response ~id m
      | exception Lang.Compile.Compile_error m -> Proto.error_response ~id m
      | exception Prob.Ctable.Ctable_error m -> Proto.error_response ~id m
      | exception Markov.Chain.Chain_error m -> Proto.error_response ~id m))

let stats_response t ~id =
  let hits, misses, entries = Request.cache_stats t.cache in
  let strings, rationals = Relational.Value.Intern.stats () in
  let tenants =
    Mutex.protect t.tenant_mu (fun () ->
        let names =
          List.sort_uniq String.compare
            (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_inflight []
            @ Hashtbl.fold (fun k _ acc -> k :: acc) t.tenant_served [])
        in
        List.map
          (fun name ->
            ( name,
              Obs.Json.Obj
                [ ( "inflight",
                    Obs.Json.Int
                      (Option.value ~default:0 (Hashtbl.find_opt t.tenant_inflight name)) );
                  ( "served",
                    Obs.Json.Int
                      (Option.value ~default:0 (Hashtbl.find_opt t.tenant_served name)) )
                ] ))
          names)
  in
  Proto.response ~id
    [ ( "stats",
        Obs.Json.Obj
          [ ("uptime_ms", Obs.Json.Float (Obs.ms_of_ns (Obs.now_ns () - t.started_ns)));
            ("sessions", Obs.Json.Int (Atomic.get t.sessions));
            ("served", Obs.Json.Int (Atomic.get t.served));
            ( "plan_cache",
              Obs.Json.Obj
                [ ("hits", Obs.Json.Int hits);
                  ("misses", Obs.Json.Int misses);
                  ("entries", Obs.Json.Int entries)
                ] );
            ( "intern",
              Obs.Json.Obj
                [ ("strings", Obs.Json.Int strings); ("rationals", Obs.Json.Int rationals) ] );
            ("tenants", Obs.Json.Obj tenants)
          ] )
    ]

let handle_line t line =
  match Proto.parse_request line with
  | Error m -> Proto.error_response ~id:"" m
  | Ok { Proto.id; tenant; req } -> (
    match req with
    | Proto.Load { name; source } -> (
      match
        try Ok (Lang.Parser.parse source) with
        | Lang.Parser.Parse_error m | Lang.Datalog.Datalog_error m -> Error m
        | Prob.Ctable.Ctable_error m -> Error m
      with
      | Error m -> Proto.error_response ~id m
      | Ok parsed ->
        Mutex.protect t.programs_mu (fun () ->
            Hashtbl.replace t.programs (tenant, name) source);
        Proto.response ~id
          [ ("loaded", Obs.Json.Str name);
            ("rules", Obs.Json.Int (List.length parsed.Lang.Parser.program));
            ("facts", Obs.Json.Int (List.length parsed.Lang.Parser.facts))
          ])
    | Proto.Query q -> run_query t ~tenant ~id q
    | Proto.Stats -> stats_response t ~id
    | Proto.Cancel { target } ->
      let found =
        Mutex.protect t.inflight_mu (fun () ->
            match Hashtbl.find_opt t.inflight (tenant, target) with
            | Some g ->
              Guard.cancel g;
              true
            | None -> false)
      in
      Proto.response ~id [ ("cancelled", Obs.Json.Bool found) ])

(* --- sessions ------------------------------------------------------------- *)

let track_conn t fd = Mutex.protect t.conns_mu (fun () -> t.conns <- fd :: t.conns)

let untrack_conn t fd =
  Mutex.protect t.conns_mu (fun () -> t.conns <- List.filter (fun c -> c != fd) t.conns)

let session t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try
     let continue = ref true in
     while !continue && not (Atomic.get t.stop) do
       match input_line ic with
       | "" -> ()
       | line ->
         let resp = handle_line t line in
         output_string oc (Obs.Json.to_string resp);
         output_char oc '\n';
         flush oc
       | exception End_of_file -> continue := false
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  untrack_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr t.sessions

let refuse fd msg =
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc (Obs.Json.to_string (Proto.error_response ~id:"" msg));
     output_char oc '\n';
     flush oc
   with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Join worker domains whose session has finished; called opportunistically
   from the accept loop so a long-lived daemon does not accumulate handles. *)
let reap t =
  let finished, live =
    Mutex.protect t.conns_mu (fun () ->
        let f, l = List.partition (fun (_, done_) -> Atomic.get done_) t.workers in
        t.workers <- l;
        (f, l))
  in
  ignore live;
  List.iter (fun (d, _) -> Domain.join d) finished

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    (* Wake the accept loop with a throwaway connection; it observes the
       stop flag and exits. *)
    try
      let fd =
        Unix.socket (Unix.domain_of_sockaddr t.sockaddr) Unix.SOCK_STREAM 0
      in
      (try Unix.connect fd t.sockaddr with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    with Unix.Unix_error _ -> ()
  end

let serve_forever t =
  (* A client hanging up mid-response must not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try
     while not (Atomic.get t.stop) do
       match Unix.accept t.listen_fd with
       | fd, _ ->
         if Atomic.get t.stop then (try Unix.close fd with Unix.Unix_error _ -> ())
         else if Atomic.get t.sessions >= t.cfg.max_sessions then
           refuse fd
             (Printf.sprintf "admission: server at capacity (%d sessions)" t.cfg.max_sessions)
         else begin
           Atomic.incr t.sessions;
           track_conn t fd;
           let done_ = Atomic.make false in
           let d =
             Domain.spawn (fun () ->
                 Fun.protect ~finally:(fun () -> Atomic.set done_ true) (fun () -> session t fd))
           in
           Mutex.protect t.conns_mu (fun () -> t.workers <- (d, done_) :: t.workers);
           reap t
         end
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     done
   with Unix.Unix_error _ when Atomic.get t.stop -> ());
  (* Drain: close the listener, nudge every live session off its blocking
     read, join all workers, remove the socket file. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.protect t.conns_mu (fun () ->
      List.iter
        (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conns);
  let workers = Mutex.protect t.conns_mu (fun () ->
      let w = t.workers in
      t.workers <- [];
      w)
  in
  List.iter (fun (d, _) -> Domain.join d) workers;
  match t.cfg.socket with
  | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
  | Tcp _ -> ()
