(* Shared request execution: the pieces a query needs whether it arrives
   over the daemon's wire protocol or a CLI invocation — a compile-relevant
   fingerprint, the shared prepared-plan cache, the checkpoint plumbing and
   the --progress observer both CLIs used to duplicate. *)

type spec = {
  source : string;
  semantics : Eval.Engine.semantics;
  method_ : Eval.Engine.method_;
  optimize : bool;
  plan : bool;
  strategy : Eval.Engine.strategy;
  magic : bool;
}

let make ?(optimize = false) ?(plan = true) ?(strategy = Eval.Engine.Semi_naive)
    ?(magic = false) ~semantics ~method_ source =
  { source; semantics; method_; optimize; plan; strategy; magic }

let semantics_slug = function
  | Eval.Engine.Inflationary -> "inflationary"
  | Eval.Engine.Noninflationary -> "noninflationary"

let method_slug = function
  | Eval.Engine.Exact -> "exact"
  | Eval.Engine.Exact_partitioned -> "partitioned"
  | Eval.Engine.Exact_lumped -> "lumped"
  | Eval.Engine.Sampling { eps; delta; burn_in } ->
    Printf.sprintf "sample(%g,%g,%d)" eps delta burn_in
  | Eval.Engine.Time_average { steps; burn_in } ->
    Printf.sprintf "time-average(%d,%d)" steps burn_in

(* Every field that influences the prepared artifact participates; two
   specs with equal fingerprints compile to interchangeable plans. *)
let fingerprint spec =
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ "probdb.plan/1";
            semantics_slug spec.semantics;
            method_slug spec.method_;
            string_of_bool spec.optimize;
            string_of_bool spec.plan;
            (match spec.strategy with
             | Eval.Engine.Naive -> "naive"
             | Eval.Engine.Semi_naive -> "semi-naive");
            string_of_bool spec.magic;
            spec.source
          ]))

type cache = Eval.Engine.prepared Prob.Pplan.Cache.t

let make_cache ?capacity () = Prob.Pplan.Cache.create ?capacity "plan_cache"

let cache_stats = Prob.Pplan.Cache.stats

let prepare ?cache spec =
  let build () =
    let parsed = Lang.Parser.parse spec.source in
    Eval.Engine.prepare ~optimize:spec.optimize ~plan:spec.plan ~strategy:spec.strategy
      ~magic:spec.magic ~semantics:spec.semantics ~method_:spec.method_ parsed
  in
  match cache with
  | None -> (build (), false)
  | Some c ->
    let missed = ref false in
    let prep =
      Prob.Pplan.Cache.find_or_add c (fingerprint spec) (fun () ->
          missed := true;
          build ())
    in
    (prep, not !missed)

(* The daemon's compile-phase histogram wants the cache lookup inside the
   measurement: a hit costs the fingerprint digest only, and that gap —
   microseconds against a full parse+compile — is exactly what the
   latency distribution should show. *)
let prepare_timed ?cache spec =
  let t0 = Obs.now_ns () in
  let prep, hit = prepare ?cache spec in
  (prep, hit, max 0 (Obs.now_ns () - t0))

(* The checkpoint wiring shared by probdl/probmc: digest the caller's raw
   key material, pick the save path, load the resume snapshot.  [Error] is
   the resume-load failure message (the CLIs print it and exit 1). *)
let make_ckpt ~key ~checkpoint ~resume =
  match (checkpoint, resume) with
  | None, None -> Ok None
  | _ ->
    let key = Digest.to_hex (Digest.string key) in
    let save_path =
      match (checkpoint, resume) with
      | Some c, _ -> c
      | None, Some r -> r
      | None, None -> assert false
    in
    (match resume with
     | None -> Ok (Some { Eval.Pool.path = save_path; key; resume = None })
     | Some f -> (
       match Guard.Checkpoint.load f with
       | snapshot -> Ok (Some { Eval.Pool.path = save_path; key; resume = Some snapshot })
       | exception Guard.Checkpoint.Error msg ->
         Error (Printf.sprintf "cannot resume from %s: %s" f msg)))

(* The [--progress] line both CLIs install: fed by the Series observer
   (possibly from several worker domains at once, hence the mutex),
   throttled to ~10 updates/s and overwritten in place on stderr.  [label]
   is the leading word ("step" for probdl, "samples" for probmc).  Returns
   the "anything printed" flag so the caller can terminate the line. *)
let install_progress ~label () =
  let mu = Mutex.create () in
  let printed = ref false in
  let last = ref 0 in
  let step = ref 0 and states = ref 0 in
  let est = ref Float.nan and lo = ref Float.nan and hi = ref Float.nan in
  Obs.Series.set_observer
    (Some
       (fun ~name ~shard:_ ~it v ->
         Mutex.lock mu;
         (match name with
          | "sampler.estimate" ->
            if it > !step then step := it;
            est := v
          | "sampler.ci_low" -> lo := v
          | "sampler.ci_high" -> hi := v
          | "chain.states" ->
            step := it;
            states := int_of_float v
          | "chain.frontier" -> step := it
          | "fixpoint.db_tuples" -> if it > !step then step := it
          | _ -> ());
         let now = Obs.now_ns () in
         if now - !last > 100_000_000 then begin
           last := now;
           printed := true;
           let b = Buffer.create 80 in
           Buffer.add_string b (Printf.sprintf "\r%s %-8d" label !step);
           if !states > 0 then Buffer.add_string b (Printf.sprintf " states %-8d" !states);
           if Float.is_finite !est then begin
             Buffer.add_string b (Printf.sprintf " estimate %.4f" !est);
             if Float.is_finite !lo && Float.is_finite !hi then
               Buffer.add_string b (Printf.sprintf " \xc2\xb1 %.4f" ((!hi -. !lo) /. 2.0))
           end;
           Buffer.add_string b "    ";
           output_string stderr (Buffer.contents b);
           flush stderr
         end;
         Mutex.unlock mu));
  printed
