(** Strict JSON reader producing {!Obs.Json.t} — the inverse of
    [Obs.Json.to_string], used to decode protocol requests off the wire.
    Numbers without a fraction or exponent decode as [Int] (degrading to
    [Float] when wider than the native [int]); string escapes including
    [\uXXXX] (and surrogate pairs) decode to UTF-8.  Input must be exactly
    one JSON value — trailing non-whitespace is an error. *)

exception Error of string

val parse : string -> Obs.Json.t
(** Raises {!Error} with a position-annotated message on malformed input. *)

val parse_result : string -> (Obs.Json.t, string) result
(** {!parse} with the error as a value. *)
