(** Shared request execution for the daemon and the CLI front-ends: a
    compile-relevant request [spec], the shared prepared-plan cache keyed
    by its {!fingerprint}, the checkpoint wiring and the [--progress]
    observer that probdl and probmc used to each carry a copy of.

    The execution split itself lives in {!Eval.Engine} ([prepare] /
    [execute]); this module adds the caching and front-end plumbing around
    it so a daemon request and a one-shot CLI run go through the same
    compiled artifacts and report the same answers. *)

(** Everything that influences compilation.  Two specs with equal
    {!fingerprint}s produce interchangeable {!Eval.Engine.prepared}
    values. *)
type spec = {
  source : string;  (** program text (concrete syntax) *)
  semantics : Eval.Engine.semantics;
  method_ : Eval.Engine.method_;
  optimize : bool;
  plan : bool;
  strategy : Eval.Engine.strategy;
  magic : bool;
}

val make :
  ?optimize:bool ->
  ?plan:bool ->
  ?strategy:Eval.Engine.strategy ->
  ?magic:bool ->
  semantics:Eval.Engine.semantics ->
  method_:Eval.Engine.method_ ->
  string ->
  spec
(** Defaults mirror {!Eval.Engine.run}: no optimisation, compiled plans,
    semi-naive deltas, no magic rewrite. *)

val semantics_slug : Eval.Engine.semantics -> string
val method_slug : Eval.Engine.method_ -> string

val fingerprint : spec -> string
(** Hex digest over the spec (including the full source text); the plan
    cache key. *)

type cache = Eval.Engine.prepared Prob.Pplan.Cache.t

val make_cache : ?capacity:int -> unit -> cache
(** A {!Prob.Pplan.Cache} named ["plan_cache"], so hits and misses tick
    the ["plan_cache.hit"] / ["plan_cache.miss"] {!Obs} counters of the
    requesting scope (when stats are enabled there). *)

val cache_stats : cache -> int * int * int
(** (hits, misses, entries) — see {!Prob.Pplan.Cache.stats}. *)

val prepare : ?cache:cache -> spec -> Eval.Engine.prepared * bool
(** Parse + compile the spec, through [cache] when given.  The boolean is
    true on a cache hit.  Parse/compile exceptions ({!Lang.Parser.Parse_error},
    {!Eval.Engine.Engine_error}, …) propagate and are never cached. *)

val prepare_timed : ?cache:cache -> spec -> Eval.Engine.prepared * bool * int
(** {!prepare} plus its wall-clock cost in {!Obs.now_ns} nanoseconds
    (cache lookup included) — the daemon's compile-phase histogram
    sample. *)

val make_ckpt :
  key:string ->
  checkpoint:string option ->
  resume:string option ->
  (Eval.Pool.ckpt option, string) result
(** The checkpoint plumbing shared by the CLIs: digests the raw [key]
    material, saves to [checkpoint] (falling back to the [resume] path)
    and loads the resume snapshot.  [Ok None] when neither flag was given;
    [Error msg] when the resume file cannot be loaded. *)

val install_progress : label:string -> unit -> bool ref
(** Install the [--progress] Series observer: a throttled, in-place
    updated stderr line led by [label] (["step"]/["samples"]).  Returns
    the "anything printed" flag the caller checks to terminate the line.
    Remove with [Obs.Series.set_observer None]. *)
