(* probdb.proto/3 — the daemon's newline-delimited JSON protocol.  One
   request object per line in, one response object per line out.

   Rev 2 over rev 1: a "metrics" op (probdb.metrics/1 JSON + Prometheus
   text), a server-generated correlation id echoed as "corr" in every
   response, and an optional per-query "trace": true flag returning the
   request's Chrome trace document inline.

   Rev 3 over rev 2: a "ping" op (liveness probe), an optional client
   idempotency key "idem" on any request (the server deduplicates a
   retried request whose key it has already answered, returning the
   stored response verbatim), and a machine-readable "code" slug on
   error responses.  Rev-2 requests decode unchanged. *)

let schema = "probdb.proto/3"

type clazz =
  | Interactive
  | Batch

let clazz_slug = function
  | Interactive -> "interactive"
  | Batch -> "batch"

type query = {
  q_class : clazz;
  q_name : string option;
  q_source : string option;
  q_semantics : Eval.Engine.semantics;
  q_method : string;
  q_eps : float;
  q_delta : float;
  q_burn_in : int;
  q_steps : int;
  q_seed : int;
  q_domains : int option;
  q_max_states : int;
  q_max_steps : int option;
  q_optimize : bool;
  q_interpreted : bool;
  q_naive : bool;
  q_magic : bool;
  q_stats : bool;
  q_trace : bool;
}

type request =
  | Load of {
      name : string;
      source : string;
    }
  | Query of query
  | Stats
  | Metrics
  | Cancel of { target : string }
  | Ping

type envelope = {
  id : string;
  tenant : string;
  idem : string option;
  req : request;
}

(* Error taxonomy (rev 3): every error response carries one of these
   machine-readable slugs next to the human-readable "error" text. *)
let code_bad_request = "bad_request"
let code_not_found = "not_found"
let code_capacity = "capacity"
let code_frame_too_large = "frame_too_large"
let code_timeout = "timeout"
let code_eval = "eval"
let code_journal = "journal"
let code_internal = "internal"

(* --- decoding ------------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let assoc = function
  | Obs.Json.Obj o -> o
  | _ -> bad "request must be a JSON object"

let opt_str o k =
  match List.assoc_opt k o with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Str s) -> Some s
  | Some _ -> bad "field %S must be a string" k

let req_str o k =
  match opt_str o k with
  | Some s -> s
  | None -> bad "missing field %S" k

let opt_int o k =
  match List.assoc_opt k o with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Int i) -> Some i
  | Some (Obs.Json.Float f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> bad "field %S must be an integer" k

let opt_float o k =
  match List.assoc_opt k o with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Float f) -> Some f
  | Some (Obs.Json.Int i) -> Some (float_of_int i)
  | Some _ -> bad "field %S must be a number" k

let opt_bool o k =
  match List.assoc_opt k o with
  | None | Some Obs.Json.Null -> None
  | Some (Obs.Json.Bool b) -> Some b
  | Some _ -> bad "field %S must be a boolean" k

let dflt d = Option.value ~default:d

(* Defaults mirror the probdl CLI so a daemon query with only [source]
   behaves like [probdl run] with no flags. *)
let query_of o ~default_method =
  let q =
    { q_class =
        (match opt_str o "class" with
         | None | Some "interactive" -> Interactive
         | Some "batch" -> Batch
         | Some c -> bad "unknown class %S (interactive|batch)" c);
      q_name = opt_str o "name";
      q_source = opt_str o "source";
      q_semantics =
        (match opt_str o "semantics" with
         | None | Some "inflationary" | Some "inf" -> Eval.Engine.Inflationary
         | Some "noninflationary" | Some "noninf" -> Eval.Engine.Noninflationary
         | Some s -> bad "unknown semantics %S (inflationary|noninflationary)" s);
      q_method = dflt default_method (opt_str o "method");
      q_eps = dflt 0.05 (opt_float o "eps");
      q_delta = dflt 0.05 (opt_float o "delta");
      q_burn_in = dflt 200 (opt_int o "burn_in");
      q_steps = dflt 10_000 (opt_int o "steps");
      q_seed = dflt 0 (opt_int o "seed");
      q_domains = opt_int o "domains";
      q_max_states = dflt 100_000 (opt_int o "max_states");
      q_max_steps = opt_int o "max_steps";
      q_optimize = dflt false (opt_bool o "optimize");
      q_interpreted = dflt false (opt_bool o "interpreted");
      q_naive = dflt false (opt_bool o "naive");
      q_magic = dflt false (opt_bool o "magic");
      q_stats = dflt true (opt_bool o "stats");
      q_trace = dflt false (opt_bool o "trace")
    }
  in
  if q.q_name = None && q.q_source = None then bad "query needs \"source\" or \"name\"";
  q

let request_of_json j =
  try
    let o = assoc j in
    let id =
      match opt_str o "id" with
      | Some i -> i
      | None -> bad "missing field \"id\""
    in
    let tenant = dflt "default" (opt_str o "tenant") in
    let idem = opt_str o "idem" in
    let req =
      match opt_str o "op" with
      | Some "load" -> Load { name = req_str o "name"; source = req_str o "source" }
      | Some "query" -> Query (query_of o ~default_method:"exact")
      | Some "estimate" -> Query (query_of o ~default_method:"sample")
      | Some "stats" -> Stats
      | Some "metrics" -> Metrics
      | Some "cancel" -> Cancel { target = req_str o "target" }
      | Some "ping" -> Ping
      | Some op ->
          bad "unknown op %S (load|query|estimate|stats|metrics|cancel|ping)" op
      | None -> bad "missing field \"op\""
    in
    Ok { id; tenant; idem; req }
  with Bad m -> Error m

let parse_request line =
  match Jsonr.parse_result line with
  | Error m -> Error m
  | Ok j -> request_of_json j

let method_of_query q =
  match q.q_method with
  | "exact" -> Ok Eval.Engine.Exact
  | "sample" ->
    Ok (Eval.Engine.Sampling { eps = q.q_eps; delta = q.q_delta; burn_in = q.q_burn_in })
  | "partitioned" -> Ok Eval.Engine.Exact_partitioned
  | "lumped" -> Ok Eval.Engine.Exact_lumped
  | "time-average" ->
    Ok (Eval.Engine.Time_average { steps = q.q_steps; burn_in = q.q_burn_in })
  | m -> Error (Printf.sprintf "unknown method %S (exact|sample|partitioned|lumped|time-average)" m)

(* --- encoding ------------------------------------------------------------- *)

let corr_field = function
  | None -> []
  | Some c -> [ ("corr", Obs.Json.Str c) ]

let response ~id ?corr fields =
  Obs.Json.Obj
    (("schema", Obs.Json.Str schema)
     :: ("id", Obs.Json.Str id)
     :: ("ok", Obs.Json.Bool true)
     :: (corr_field corr @ fields))

let error_response ~id ?corr ?code msg =
  let code_field =
    match code with None -> [] | Some c -> [ ("code", Obs.Json.Str c) ]
  in
  Obs.Json.Obj
    (("schema", Obs.Json.Str schema)
     :: ("id", Obs.Json.Str id)
     :: ("ok", Obs.Json.Bool false)
     :: (corr_field corr @ (("error", Obs.Json.Str msg) :: code_field)))
