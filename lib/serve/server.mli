(** The probdbd server: a long-lived multi-tenant query daemon speaking
    {!Proto} (probdb.proto/3) over a Unix or TCP socket.

    Each accepted connection is a session running on its own Domain, so
    every request executes inside a fresh {!Obs.Scope} — per-tenant stats
    never bleed between concurrent sessions.  Compiled plans are shared
    across all sessions through one {!Request.cache} (the interned value
    store in {!Relational.Value} is process-global and shared
    automatically).  Per-tenant budgets are enforced by an active
    {!Guard} per request, with admission control refusing requests beyond
    the tenant's in-flight cap, and budget exhaustion degrading per
    request class: interactive requests fall back to the sampler (when
    the tenant profile allows), batch requests return partial reports.

    The telemetry plane (on by default, [config.telemetry]) records every
    request into a {!Telemetry} registry — per-(tenant, class, outcome)
    latency histograms with admission-wait/compile/eval sub-phases —
    served back by the ["metrics"] op as [probdb.metrics/1] JSON plus
    Prometheus text.  Every request gets a correlation id echoed as
    ["corr"] in its response, stamped into {!Obs.Log} request lines and
    (for ["trace"]: true queries) into the request span's args.

    Durability ([config.state_dir]): the server journals every [load]
    through {!Journal} — framed, CRC-checked, fsynced — strictly before
    applying it to the in-memory program table and before acking, and
    replays snapshot + journal at {!create}, so a daemon restarted on the
    same state dir answers queries [Q]-identically to the pre-crash one.
    Hardening: per-frame read deadlines ([config.read_deadline_ms], the
    clock starts at a frame's first byte, so idle connections are free but
    a stalled mid-frame sender is cut off), a max request frame size
    ([config.max_frame]), an error taxonomy ({!Proto} [code] slugs) under
    which no malformed, oversized or torn request can kill a session loop,
    and (tenant, ["idem"]) response dedup so a client retry of a request
    that already completed returns the stored response verbatim.
    Serve-layer chaos faults ([PROBDB_FAULT]: [conn-drop], [partial-write],
    [resp-delay], [journal-crash]) are latched once at {!create}. *)

type addr =
  | Unix_sock of string
  | Tcp of string * int

(** Per-tenant budget profile.  [None] budgets are unlimited; the guard
    built for a request still watches interrupts and cancellation. *)
type tenant_profile = {
  tp_name : string;
  tp_deadline_ms : float option;  (** interactive-class deadline *)
  tp_batch_deadline_ms : float option;
  tp_state_budget : int option;
  tp_sample_budget : int option;
  tp_max_inflight : int;  (** admission: concurrent queries per tenant *)
  tp_fallback : bool;
      (** interactive requests re-run blown exact evaluations under the
          sampler instead of returning a partial report *)
}

val default_profile : tenant_profile
(** No budgets, [tp_max_inflight] 8, fallback on. *)

val profile_of_spec : default:tenant_profile -> string -> tenant_profile
(** Parses ["name,deadline_ms=500,state_budget=10000,max_inflight=2,..."]
    (keys: deadline_ms, batch_deadline_ms, state_budget, sample_budget,
    max_inflight, fallback) on top of [default].  Raises
    [Invalid_argument] on malformed specs. *)

type config = {
  socket : addr;
  max_sessions : int;  (** concurrent connections; excess refused *)
  cache_capacity : int;  (** shared plan cache entries (FIFO eviction) *)
  default_tenant : tenant_profile;  (** applied to unlisted tenants *)
  tenants : tenant_profile list;
  telemetry : bool;
      (** record per-request metrics and answer the ["metrics"] op; off,
          the request path is the plain uninstrumented one and ["metrics"]
          returns an error *)
  state_dir : string option;
      (** durable journal + snapshot directory; [None] keeps the daemon
          fully in-memory (no fsync on the load path) *)
  journal_compact_every : int;
      (** journal records that trigger snapshot compaction *)
  read_deadline_ms : float;
      (** per-frame read deadline, measured from a frame's first byte *)
  max_frame : int;  (** max request line length in bytes *)
}

val default_config : addr -> config
(** 64 sessions, 64 cache entries, {!default_profile} for everyone,
    telemetry on, no state dir, compaction every 64 records, 10 s read
    deadline, 1 MiB max frame. *)

type t

val create : config -> t
(** Binds and listens.  For a unix socket, a leftover path with no
    listener behind it (crashed server) is removed first; a live listener
    raises [Failure].  With [state_dir] set, opens the journal and replays
    snapshot + records (truncating a torn tail) into the program table
    before any connection is accepted; raises {!Journal.Error} on corrupt
    state. *)

val serve_forever : t -> unit
(** The accept loop; returns after {!shutdown}: closes the listener,
    drains live sessions, joins their domains and unlinks a unix socket
    path. *)

val shutdown : t -> unit
(** Idempotent; safe from a signal handler or another domain. *)

val handle_line : t -> string -> Obs.Json.t
(** One request line → its response document (exposed for direct
    in-process use and tests; sessions loop over this).  Never raises —
    unexpected exceptions become [code]: ["internal"] error responses —
    except [Guard.Fault.Injected] from an armed journal crash point, which
    propagates to simulate the process dying. *)
