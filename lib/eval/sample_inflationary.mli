(** Randomized absolute approximation for inflationary queries
    (Theorem 4.3): Monte-Carlo over independent runs to the fixpoint, with
    the additive Chernoff/Hoeffding bound sizing the sample count. *)

exception Did_not_converge of int
(** A run exceeded the step bound without reaching a fixpoint. *)

val samples_needed : eps:float -> delta:float -> int
(** Smallest [m] with [2 exp(−2 ε² m) ≤ δ], i.e.
    [m = ⌈ln(2/δ) / (2 ε²)⌉]: running [m] independent trials yields
    [Pr(|p̂ − p| ≥ ε) ≤ δ]. *)

val run_once :
  ?max_steps:int -> Random.State.t -> Lang.Inflationary.t -> Relational.Database.t -> bool
(** One sampled run to the fixpoint; whether the event holds there.
    [max_steps] (default 100000) guards against miswritten kernels.  When
    {!Obs.Series} is enabled, records ["fixpoint.db_tuples"] and
    ["fixpoint.delta_tuples"] per step under the current shard. *)

val record_estimate : hits:int -> completed:int -> unit
(** Appends one ["sampler.estimate"]/["sampler.ci_low"]/["sampler.ci_high"]
    point (Wilson 95% interval) for shard 0 — the sequential samplers'
    convergence cadence, shared with {!Sample_noninflationary}. *)

val run_samples :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  ?guard:Guard.t ->
  samples:int ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  Pool.run
(** The governed sequential sampler: runs up to [samples] trials, stopping
    early (with [stopped = Some _]) when [guard]'s sample budget or
    deadline runs out or an interrupt is requested.  With the default
    unlimited guard the draw sequence is identical to {!eval}'s. *)

val run_samples_par :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  ?guard:Guard.t ->
  ?fault:Guard.Fault.spec ->
  ?ckpt:Pool.ckpt ->
  domains:int ->
  samples:int ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  Pool.run
(** The governed sharded sampler ({!Pool.run_samples}): budgets, fault
    injection, checkpoint/resume.  Ungoverned calls take the exact
    {!eval_par} path. *)

val eval :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  samples:int ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  float
(** Fraction of [samples] runs whose fixpoint satisfies the event.
    [init_sampler], when given, draws a fresh initial world per run (e.g. a
    c-table valuation); the database argument is then ignored. *)

val eval_eps_delta :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  eps:float ->
  delta:float ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  float
(** {!eval} with the sample count from {!samples_needed}. *)

val eval_par :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  domains:int ->
  samples:int ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  float
(** {!eval} with the restarts sharded across [domains] OCaml domains
    ({!Pool}).  The estimate is reproducible for a fixed seed regardless of
    [domains] (including [domains = 1]), but uses different RNG streams than
    the sequential {!eval}, so the two may differ on the same seed. *)

val eval_eps_delta_par :
  ?max_steps:int ->
  ?init_sampler:(Random.State.t -> Relational.Database.t) ->
  domains:int ->
  eps:float ->
  delta:float ->
  Random.State.t ->
  Lang.Inflationary.t ->
  Relational.Database.t ->
  float
(** {!eval_par} with the sample count from {!samples_needed}. *)

val ctable_sampler :
  program:Lang.Datalog.program -> Prob.Ctable.t -> (Random.State.t -> Relational.Database.t)
(** Draws a world of the c-table and extends it with the relations the
    compiled inflationary kernel expects. *)
