(** Sampling evaluation for non-inflationary queries (Theorem 5.6).

    When the induced chain is ergodic, walking [burn_in ≥ T(q,D)] steps
    (the mixing time) makes the end-state distribution ε-close to
    stationary; independent restarts then give Chernoff-quality estimates
    of the event probability, in time polynomial in the database size and
    the mixing time. *)

val run_once :
  Random.State.t -> burn_in:int -> Lang.Forever.t -> Relational.Database.t -> bool
(** One independent sample: walk [burn_in] steps from the input, test the
    event at the final state. *)

val run_samples :
  ?guard:Guard.t ->
  Random.State.t ->
  burn_in:int ->
  samples:int ->
  Lang.Forever.t ->
  Relational.Database.t ->
  Pool.run
(** Governed sequential estimator: up to [samples] restarts, stopping early
    (with [stopped = Some _]) on the guard's sample budget, deadline or an
    interrupt.  With the default unlimited guard the draw sequence is
    identical to {!eval}'s. *)

val run_samples_par :
  ?guard:Guard.t ->
  ?fault:Guard.Fault.spec ->
  ?ckpt:Pool.ckpt ->
  Random.State.t ->
  domains:int ->
  burn_in:int ->
  samples:int ->
  Lang.Forever.t ->
  Relational.Database.t ->
  Pool.run
(** Governed sharded estimator ({!Pool.run_samples}): budgets, fault
    injection, checkpoint/resume.  Ungoverned calls take the exact
    {!eval_par} path. *)

val eval :
  Random.State.t -> burn_in:int -> samples:int -> Lang.Forever.t -> Relational.Database.t -> float
(** The Theorem 5.6 estimator: fraction of [samples] independent restarts
    whose mixed end state satisfies the event. *)

val eval_eps_delta :
  Random.State.t ->
  burn_in:int ->
  eps:float ->
  delta:float ->
  Lang.Forever.t ->
  Relational.Database.t ->
  float
(** {!eval} with the Hoeffding sample count of
    {!Sample_inflationary.samples_needed}. *)

val eval_par :
  Random.State.t ->
  domains:int ->
  burn_in:int ->
  samples:int ->
  Lang.Forever.t ->
  Relational.Database.t ->
  float
(** {!eval} with the independent restarts sharded across [domains] OCaml
    domains ({!Pool}).  Reproducible for a fixed seed regardless of
    [domains]; uses different RNG streams than the sequential {!eval}. *)

val eval_eps_delta_par :
  Random.State.t ->
  domains:int ->
  burn_in:int ->
  eps:float ->
  delta:float ->
  Lang.Forever.t ->
  Relational.Database.t ->
  float
(** {!eval_par} with the Hoeffding sample count. *)

val eval_kernel :
  Random.State.t -> burn_in:int -> samples:int -> kernel:Lang.Kernel.t -> event:Lang.Event.t ->
  Relational.Database.t -> float
(** {!eval} for a composite {!Lang.Kernel}. *)

val eval_time_average :
  Random.State.t -> ?burn_in:int -> steps:int -> Lang.Forever.t -> Relational.Database.t -> float
(** Single-walk estimator of the defining limit: the fraction of [steps]
    consecutive states satisfying the event, after walking (and discarding)
    [burn_in] steps first (default 0).  Consistent for ergodic chains but
    with correlated samples; without burn-in the pre-mixing prefix biases
    the estimate on slow-mixing chains. *)

val estimate_burn_in :
  ?max_states:int -> ?max_steps:int -> eps:float -> Lang.Forever.t -> Relational.Database.t -> int option
(** Builds the exact chain and measures the mixing time from the input
    state — usable on small instances to calibrate [burn_in].  [None] when
    the chain is not ergodic or does not mix within [max_steps]. *)
