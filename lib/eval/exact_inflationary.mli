(** Exact evaluation of inflationary queries (Proposition 4.4).

    Traverses the tree of possible computations down to all fixpoints.
    Because the state only grows along every edge, the only cycles are
    self-loops, whose geometric escape is folded in by conditioning: from a
    non-fixpoint state [A] with self-probability [p], the walk leaves [A]
    with probability 1, so each strict successor's weight is renormalised by
    [1/(1 − p)].  Results are exact rationals.  Unlike the PSPACE-frugal
    traversal of the paper we memoise states, trading memory for speed; the
    visited-state count is the same. *)

exception Diverged of string
(** Raised when a transition produces a state that does not contain the
    previous one — the query was not inflationary after all. *)

type stats = {
  states_visited : int;  (** distinct states expanded *)
  fixpoints : int;  (** distinct fixpoints reached *)
}

val eval : ?guard:Guard.t -> Lang.Inflationary.t -> Relational.Database.t -> Bigq.Q.t
(** Probability that the event holds at the fixpoint, starting from a
    certain database.  [guard] (default {!Guard.unlimited}) is charged one
    state per distinct visited database; exceeding its state budget or
    deadline raises {!Guard.Exhausted} with the work done so far still
    readable from the guard.

    When the query carries a semi-naive stepper
    ({!Lang.Forever.delta_stepper}, installed by {!Lang.Seminaive.install}),
    successors are computed incrementally from the per-step deltas; the
    visited states, their count and the exact answer are identical to the
    naive walk.  Memoisation stays sound because the [oldVals] relations
    make each state's successor distribution path-independent. *)

val eval_pspace : Lang.Inflationary.t -> Relational.Database.t -> Bigq.Q.t
(** The paper's Proposition 4.4 algorithm verbatim: a full traversal of the
    computation tree storing only the current path (no memoisation) —
    polynomial space, potentially revisiting shared states exponentially
    often.  Kept as the reference implementation and for the
    time-vs-memory ablation. *)

val eval_with_stats :
  ?guard:Guard.t -> Lang.Inflationary.t -> Relational.Database.t -> Bigq.Q.t * stats

val eval_worlds :
  ?guard:Guard.t ->
  ?prepare:(Relational.Database.t -> Relational.Database.t) ->
  Lang.Inflationary.t ->
  Relational.Database.t Prob.Dist.t ->
  Bigq.Q.t
(** Probability-weighted average over the worlds of a probabilistic input
    database (e.g. {!Prob.Ctable.worlds}); [prepare] lets callers extend
    each world with the empty IDB / auxiliary relations the kernel needs
    (see {!Lang.Compile.initial_database}).  [guard]'s state budget spans
    the whole enumeration, as in {!eval_ctable}. *)

val eval_ctable :
  ?guard:Guard.t ->
  ?plan:bool ->
  ?seminaive:bool ->
  program:Lang.Datalog.program -> event:Lang.Event.t -> Prob.Ctable.t -> Bigq.Q.t
(** Convenience pipeline: compile the program under inflationary semantics
    against each c-table world and average — the "even over probabilistic
    c-tables" case of Proposition 4.4.  [plan] (default [false]) executes
    each per-world kernel as compiled physical plans, and [seminaive]
    (default [true], effective only with [plan]) additionally steps each
    world's fixpoint through one shared semi-naive delta plan; the exact
    rational answer is identical either way.  [guard]'s state budget spans
    the whole world enumeration (one shared counter across worlds). *)
