module Database = Relational.Database
module Dist = Prob.Dist

exception Did_not_converge of int

let samples_needed ~eps ~delta =
  if eps <= 0.0 || delta <= 0.0 || delta >= 1.0 then invalid_arg "samples_needed";
  int_of_float (ceil (log (2.0 /. delta) /. (2.0 *. eps *. eps)))

let steps_c = Obs.counter "engine.steps"
let fixpoints_c = Obs.counter "engine.fixpoints"

let run_once ?(max_steps = 100_000) rng query init =
  let forever = Lang.Inflationary.forever query in
  let event = Lang.Inflationary.event query in
  (* Stats are checked once per sample (at the fixpoint), not per step.
     Per-step growth series are latched once per sample too; a step is a
     whole kernel application, so the extra branch is noise even when on. *)
  let ser = Obs.Series.enabled () in
  let finish db steps =
    if Obs.enabled () then begin
      Obs.add steps_c steps;
      Obs.incr fixpoints_c
    end;
    Lang.Event.holds event db
  in
  let rec go db steps =
    if steps > max_steps then raise (Did_not_converge max_steps);
    let db' = Lang.Forever.step_sampled rng forever db in
    if ser then begin
      let t = Database.total_tuples db' in
      Obs.Series.add "fixpoint.db_tuples" ~it:steps (float_of_int t);
      Obs.Series.add "fixpoint.delta_tuples" ~it:steps
        (float_of_int (t - Database.total_tuples db))
    end;
    if Database.equal db db' then
      (* The sampled step kept the state; confirm it is a true fixpoint
         rather than a self-loop we happened to sample. *)
      if Lang.Inflationary.is_fixpoint query db then finish db steps
      else go db' (steps + 1)
    else go db' (steps + 1)
  in
  go init 0

(* Sequential convergence cadence, mirroring [Pool]'s per-shard one (the
   sequential sampler is shard 0 of 1). *)
let record_estimate ~hits ~completed =
  let lo, hi = Obs.wilson_interval ~hits ~total:completed in
  Obs.Series.add "sampler.estimate" ~shard:0 ~it:completed
    (float_of_int hits /. float_of_int completed);
  Obs.Series.add "sampler.ci_low" ~shard:0 ~it:completed lo;
  Obs.Series.add "sampler.ci_high" ~shard:0 ~it:completed hi

(* The governed sequential loop.  With the default unlimited guard the
   draw sequence (and hence the estimate) is exactly the historical
   sequential sampler's: same worlds, same per-sample records. *)
let run_samples ?max_steps ?init_sampler ?(guard = Guard.unlimited) ~samples rng query init =
  if samples <= 0 then invalid_arg "run_samples: samples must be positive";
  let ser = Obs.Series.enabled () in
  let k = max 1 (samples / 32) in
  (* A sample budget truncates the run up front; deadline and interrupt are
     polled per sample via the latched [gstop] (no closure, no branch, when
     the guard is off). *)
  let target =
    match Guard.sample_budget guard with Some b when b < samples -> b | _ -> samples
  in
  let gstop = Guard.stop_check guard in
  let hits = ref 0 and completed = ref 0 in
  let stopped = ref None in
  (try
     while !completed < target do
       (match gstop with Some check -> check () | None -> ());
       let world = match init_sampler with Some f -> f rng | None -> init in
       if run_once ?max_steps rng query world then incr hits;
       incr completed;
       if ser && !completed mod k = 0 then record_estimate ~hits:!hits ~completed:!completed
     done;
     if target < samples then
       stopped := Some (Guard.Samples { budget = target; completed = !completed })
   with Guard.Exhausted r -> stopped := Some r);
  { Pool.hits = !hits; completed = !completed; requested = samples; stopped = !stopped }

let eval ?max_steps ?init_sampler ~samples rng query init =
  let r = run_samples ?max_steps ?init_sampler ~samples rng query init in
  float_of_int r.Pool.hits /. float_of_int r.Pool.requested

let eval_eps_delta ?max_steps ?init_sampler ~eps ~delta rng query init =
  eval ?max_steps ?init_sampler ~samples:(samples_needed ~eps ~delta) rng query init

let run_samples_par ?max_steps ?init_sampler ?guard ?fault ?ckpt ~domains ~samples rng query
    init =
  Pool.run_samples ?guard ?fault ?ckpt ~domains ~samples rng (fun rng ->
      let world = match init_sampler with Some f -> f rng | None -> init in
      run_once ?max_steps rng query world)

let eval_par ?max_steps ?init_sampler ~domains ~samples rng query init =
  let r = run_samples_par ?max_steps ?init_sampler ~domains ~samples rng query init in
  float_of_int r.Pool.hits /. float_of_int r.Pool.requested

let eval_eps_delta_par ?max_steps ?init_sampler ~domains ~eps ~delta rng query init =
  eval_par ?max_steps ?init_sampler ~domains ~samples:(samples_needed ~eps ~delta) rng query init

let ctable_sampler ~program ctable rng =
  let theta = Prob.Ctable.sample_valuation rng ctable in
  let world = Prob.Ctable.instantiate ctable theta in
  Lang.Compile.inflationary_initial program world
