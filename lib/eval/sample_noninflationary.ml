let steps_c = Obs.counter "engine.steps"

let run_once rng ~burn_in query init =
  if Obs.enabled () then Obs.add steps_c burn_in;
  let rec go db k =
    if k = 0 then Lang.Event.holds query.Lang.Forever.event db
    else go (Lang.Forever.step_sampled rng query db) (k - 1)
  in
  go init burn_in

(* Governed sequential loop; see [Sample_inflationary.run_samples] — same
   shape, same draw-sequence compatibility with the historical [eval]. *)
let run_samples ?(guard = Guard.unlimited) rng ~burn_in ~samples query init =
  if samples <= 0 then invalid_arg "run_samples: samples must be positive";
  let ser = Obs.Series.enabled () in
  let k = max 1 (samples / 32) in
  let target =
    match Guard.sample_budget guard with Some b when b < samples -> b | _ -> samples
  in
  let gstop = Guard.stop_check guard in
  let hits = ref 0 and completed = ref 0 in
  let stopped = ref None in
  (try
     while !completed < target do
       (match gstop with Some check -> check () | None -> ());
       if run_once rng ~burn_in query init then incr hits;
       incr completed;
       if ser && !completed mod k = 0 then
         Sample_inflationary.record_estimate ~hits:!hits ~completed:!completed
     done;
     if target < samples then
       stopped := Some (Guard.Samples { budget = target; completed = !completed })
   with Guard.Exhausted r -> stopped := Some r);
  { Pool.hits = !hits; completed = !completed; requested = samples; stopped = !stopped }

let eval rng ~burn_in ~samples query init =
  let r = run_samples rng ~burn_in ~samples query init in
  float_of_int r.Pool.hits /. float_of_int r.Pool.requested

let eval_eps_delta rng ~burn_in ~eps ~delta query init =
  eval rng ~burn_in ~samples:(Sample_inflationary.samples_needed ~eps ~delta) query init

let run_samples_par ?guard ?fault ?ckpt rng ~domains ~burn_in ~samples query init =
  Pool.run_samples ?guard ?fault ?ckpt ~domains ~samples rng (fun rng ->
      run_once rng ~burn_in query init)

let eval_par rng ~domains ~burn_in ~samples query init =
  let r = run_samples_par rng ~domains ~burn_in ~samples query init in
  float_of_int r.Pool.hits /. float_of_int r.Pool.requested

let eval_eps_delta_par rng ~domains ~burn_in ~eps ~delta query init =
  eval_par rng ~domains ~burn_in
    ~samples:(Sample_inflationary.samples_needed ~eps ~delta)
    query init

let eval_kernel rng ~burn_in ~samples ~kernel ~event init =
  if samples <= 0 then invalid_arg "eval_kernel: samples must be positive";
  let hits = ref 0 in
  for _ = 1 to samples do
    let rec go db k = if k = 0 then db else go (Lang.Kernel.sample kernel rng db) (k - 1) in
    if Lang.Event.holds event (go init burn_in) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

(* The long-run average is over the stationary regime; averaging from the
   initial state folds the pre-mixing prefix into the estimate and biases
   it on slow-mixing chains.  [burn_in] walks (and discards) that prefix
   before any state is counted. *)
let eval_time_average rng ?(burn_in = 0) ~steps query init =
  if steps <= 0 then invalid_arg "eval_time_average: steps must be positive";
  if burn_in < 0 then invalid_arg "eval_time_average: burn_in must be non-negative";
  if Obs.enabled () then Obs.add steps_c (burn_in + steps);
  let db = ref init in
  for _ = 1 to burn_in do
    db := Lang.Forever.step_sampled rng query !db
  done;
  let hits = ref 0 in
  for _ = 1 to steps do
    if Lang.Event.holds query.Lang.Forever.event !db then incr hits;
    db := Lang.Forever.step_sampled rng query !db
  done;
  float_of_int !hits /. float_of_int steps

let estimate_burn_in ?max_states ?max_steps ~eps query init =
  let chain = Exact_noninflationary.build_chain ?max_states query init in
  match Markov.Chain.index chain init with
  | None -> None
  | Some start -> Markov.Mixing.mixing_time_from ?max_steps ~eps chain ~start
