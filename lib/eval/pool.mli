(** Worker pool over OCaml 5 domains for the sampling engines (Thm 4.3 /
    Thm 5.6), whose independent restarts are embarrassingly parallel.

    Determinism contract: work is cut into shards whose number and RNG
    streams depend only on the workload and the caller's RNG — never on the
    domain count — so for a fixed seed the merged result is bit-identical
    across runs {e and} across domain counts.  {!run_samples} extends the
    same contract to governed runs: a budgeted run completes a
    deterministic prefix of the unbudgeted sample set, and an interrupted
    run resumed from its checkpoint finishes with the identical estimate. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware parallelism budget. *)

type failure = {
  shard : int;
  completed : int;  (** samples completed in that shard when it failed *)
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

exception
  Worker_error of { shard : int; completed : int; exn : exn; failures : failure list }
(** Raised by {!count_hits}/{!run_samples} when [run] raises: every shard
    still runs to its own conclusion, then all failed shards are collected
    into [failures] (ascending shard order) and the first one's
    shard/completed/exn ride along at top level for compatibility.  The
    raise preserves the first failure's original backtrace
    ([Printexc.raise_with_backtrace]).  Raised on the calling domain
    (sequential path) or after all domains join (parallel path). *)

val split_rngs : Random.State.t -> int -> Random.State.t array
(** [split_rngs rng n] deterministically splits [n] independent child
    streams off [rng] (advancing it). *)

val map_tasks : domains:int -> (unit -> 'a) array -> 'a array
(** Runs the tasks on [domains] domains (clamped to [1 .. #tasks]) and
    returns their results in task order.  Task-to-domain assignment is
    dynamic (work stealing off a shared counter); results are positioned by
    task index, so the output does not depend on scheduling.  If a task
    raises, the exception is re-raised after all domains are joined. *)

val count_hits :
  domains:int -> samples:int -> Random.State.t -> (Random.State.t -> bool) -> int
(** [count_hits ~domains ~samples rng run]: evaluates [run] on [samples]
    independent trials sharded across domains and returns the number of
    [true] results.  Each shard draws from its own stream split off [rng];
    the count is reproducible for a fixed (rng state, samples) regardless of
    [domains].  Raises [Invalid_argument] when [samples <= 0].

    Telemetry (latched at task-build time, off path unchanged): with
    {!Obs.Series} enabled each shard records a ["sampler.estimate"] series
    with Wilson 95% bounds every k-th sample (k a function of the shard's
    workload only, so the merged series is domain-count independent); with
    {!Obs.Trace} enabled each shard emits one complete ["pool.shard"] span
    on its own tid and stamps {!Obs.set_tid} for nested recording sites. *)

type run = {
  hits : int;
  completed : int;  (** samples actually evaluated (= [requested] iff complete) *)
  requested : int;
  stopped : Guard.reason option;  (** [None] iff the run completed *)
}

type ckpt = {
  path : string;  (** where to save [probdb.ckpt/1] snapshots *)
  key : string;  (** run fingerprint; resuming refuses a mismatched key *)
  resume : Guard.Checkpoint.t option;  (** a previously saved state to continue *)
}

val run_samples :
  ?guard:Guard.t ->
  ?fault:Guard.Fault.spec ->
  ?ckpt:ckpt ->
  domains:int ->
  samples:int ->
  Random.State.t ->
  (Random.State.t -> bool) ->
  run
(** Resource-governed {!count_hits}.  With the default unlimited guard, no
    fault spec in scope (explicit or [PROBDB_FAULT]) and no checkpoint, it
    runs the exact {!count_hits} path — governance is zero-cost when off
    and fixed-seed estimates are unchanged.  Otherwise the governed loop
    adds, per sample, one stop-flag read plus deadline/interrupt polls:

    - A sample budget clamps each shard's quota up front with the same
      deterministic split as the samples themselves, so the budgeted run
      evaluates a fixed-seed-reproducible subset and reports
      [stopped = Some (Samples _)].
    - Deadline and interrupt stop every shard at its next sample boundary
      ([stopped = Some (Deadline _ | Interrupted)]); completed counts and
      hit counts of the finished prefix are returned.
    - [ckpt] persists per-shard progress (hit counts + RNG states) every
      1/8 of a shard's workload and once at the end, atomically; [resume]
      replays each shard from its saved RNG state, making
      interrupt-then-resume bit-identical to an uninterrupted run at any
      domain count.  Raises {!Guard.Checkpoint.Error} when the saved file
      does not match this run's key or shape.
    - [fault] injects deterministic failures ({!Guard.Fault}); shards
      failing with {!Guard.Fault.Transient} are retried once, replaying
      deterministically from their last published state. *)
