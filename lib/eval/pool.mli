(** Worker pool over OCaml 5 domains for the sampling engines (Thm 4.3 /
    Thm 5.6), whose independent restarts are embarrassingly parallel.

    Determinism contract: work is cut into shards whose number and RNG
    streams depend only on the workload and the caller's RNG — never on the
    domain count — so for a fixed seed the merged result is bit-identical
    across runs {e and} across domain counts. *)

val available : unit -> int
(** [Domain.recommended_domain_count ()]: the hardware parallelism budget. *)

exception Worker_error of { shard : int; completed : int; exn : exn }
(** Raised by {!count_hits} when [run] raises: carries the shard index, how
    many of that shard's samples had completed, and the original exception.
    Raised on the calling domain (sequential path) or re-raised after all
    domains join (parallel path). *)

val split_rngs : Random.State.t -> int -> Random.State.t array
(** [split_rngs rng n] deterministically splits [n] independent child
    streams off [rng] (advancing it). *)

val map_tasks : domains:int -> (unit -> 'a) array -> 'a array
(** Runs the tasks on [domains] domains (clamped to [1 .. #tasks]) and
    returns their results in task order.  Task-to-domain assignment is
    dynamic (work stealing off a shared counter); results are positioned by
    task index, so the output does not depend on scheduling.  If a task
    raises, the exception is re-raised after all domains are joined. *)

val count_hits :
  domains:int -> samples:int -> Random.State.t -> (Random.State.t -> bool) -> int
(** [count_hits ~domains ~samples rng run]: evaluates [run] on [samples]
    independent trials sharded across domains and returns the number of
    [true] results.  Each shard draws from its own stream split off [rng];
    the count is reproducible for a fixed (rng state, samples) regardless of
    [domains].  Raises [Invalid_argument] when [samples <= 0].

    Telemetry (latched at task-build time, off path unchanged): with
    {!Obs.Series} enabled each shard records a ["sampler.estimate"] series
    with Wilson 95% bounds every k-th sample (k a function of the shard's
    workload only, so the merged series is domain-count independent); with
    {!Obs.Trace} enabled each shard emits one complete ["pool.shard"] span
    on its own tid and stamps {!Obs.set_tid} for nested recording sites. *)
