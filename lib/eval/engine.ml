module Q = Bigq.Q

type semantics =
  | Inflationary
  | Noninflationary

type method_ =
  | Exact
  | Exact_partitioned
  | Exact_lumped
  | Sampling of {
      eps : float;
      delta : float;
      burn_in : int;
    }

type report = {
  probability : float;
  exact : Q.t option;
  semantics : semantics;
  method_ : method_;
  diagnostics : (string * string) list;
}

exception Engine_error of string

let err fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

let run ?(seed = 0) ?max_states ?(optimize = false) ?(plan = true) ?domains ~semantics ~method_
    (parsed : Lang.Parser.parsed) =
  let event =
    match parsed.Lang.Parser.event with
    | Some e -> e
    | None -> err "program has no ?- event"
  in
  let program = parsed.Lang.Parser.program in
  let ctable = Lang.Parser.ctable_of parsed in
  let db = Lang.Parser.database_of_facts parsed.Lang.Parser.facts in
  let rng = Random.State.make [| seed |] in
  let maybe_optimize kernel init =
    if not optimize then kernel
    else
      Prob.Optimize.interp ~schema_of:(Lang.Compile.schema_of_database init) kernel
  in
  (* Compile the (already optimised) kernel to physical plans against the
     initial database's schemas; stepping is then plan execution.  The
     results — exact distributions and fixed-seed samples alike — are
     identical to the interpreted kernel's. *)
  let compile_query init query =
    if not plan then query
    else Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) query
  in
  (* [domains = None] keeps the sequential samplers and their original RNG
     streams (seed-compatible with earlier releases); [Some d] routes every
     sampling method through the sharded parallel evaluators, whose result
     for a fixed seed is the same for any [d] >= 1. *)
  let sample_inflationary ?init_sampler ~samples rng query init =
    match domains with
    | None -> Sample_inflationary.eval ?init_sampler ~samples rng query init
    | Some d -> Sample_inflationary.eval_par ?init_sampler ~domains:d ~samples rng query init
  in
  let sample_noninflationary rng ~burn_in ~samples query init =
    match domains with
    | None -> Sample_noninflationary.eval rng ~burn_in ~samples query init
    | Some d -> Sample_noninflationary.eval_par rng ~domains:d ~burn_in ~samples query init
  in
  let domain_diags =
    match domains with None -> [] | Some d -> [ ("domains", string_of_int d) ]
  in
  let base_diags =
    [ ("rules", string_of_int (List.length program));
      ("facts", string_of_int (List.length parsed.Lang.Parser.facts));
      ("plan", string_of_bool plan);
      ("linear", string_of_bool (Lang.Linearity.is_linear program));
      ("repair-key on base only", string_of_bool (Lang.Linearity.repair_key_on_base_only program))
    ]
  in
  match (semantics, method_, ctable) with
  | Inflationary, Exact, Some ct ->
    (* pc-table input: choices are made once (Section 3.3), so average the
       per-world exact answers. *)
    let p = Exact_inflationary.eval_ctable ~plan ~program ~event ct in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      diagnostics = base_diags @ [ ("pc-table worlds", string_of_int (Prob.Ctable.num_worlds ct)) ];
    }
  | Inflationary, Sampling { eps; delta; _ }, Some ct ->
    let sampler = Sample_inflationary.ctable_sampler ~program ct in
    (* All worlds of the c-table share schemas, so one world's initial
       database is a valid schema table for the compiled plans. *)
    let kernel, init0 = Lang.Compile.inflationary_kernel program (sampler rng) in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init0 (Lang.Forever.make ~kernel ~event))
    in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p =
      sample_inflationary ~init_sampler:sampler ~samples rng query Relational.Database.empty
    in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      diagnostics = base_diags @ [ ("samples", string_of_int samples) ] @ domain_diags;
    }
  | Noninflationary, Exact, Some ct ->
    (* pc-table input: the table is a macro re-sampled every step. *)
    let kernel, init = Lang.Compile.noninflationary_kernel_ctable program ct in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.result;
      exact = Some a.Exact_noninflationary.result;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.num_states);
            ("irreducible", string_of_bool a.Exact_noninflationary.irreducible);
            ("ergodic", string_of_bool a.Exact_noninflationary.ergodic)
          ];
    }
  | Noninflationary, Sampling { eps; delta; burn_in }, Some ct ->
    let kernel, init = Lang.Compile.noninflationary_kernel_ctable program ct in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_noninflationary rng ~burn_in ~samples query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
        @ domain_diags;
    }
  | _, Exact_partitioned, Some _ -> err "partitioned evaluation does not support pc-table inputs"
  | Inflationary, Exact_lumped, _ -> err "lumped evaluation applies to non-inflationary queries"
  | Noninflationary, Exact_lumped, ct ->
    let kernel, init =
      match ct with
      | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
      | None -> Lang.Compile.noninflationary_kernel program db
    in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse_lumped ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.lumped_result;
      exact = Some a.Exact_noninflationary.lumped_result;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.states_before);
            ("lumped classes", string_of_int a.Exact_noninflationary.states_after);
            ("lumped", string_of_bool a.Exact_noninflationary.lumped)
          ];
    }
  | Inflationary, Exact, None ->
    let kernel, init = Lang.Compile.inflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init (Lang.Forever.make ~kernel ~event))
    in
    let p, stats = Exact_inflationary.eval_with_stats query init in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("states visited", string_of_int stats.Exact_inflationary.states_visited);
            ("fixpoints", string_of_int stats.Exact_inflationary.fixpoints)
          ];
    }
  | Inflationary, Sampling { eps; delta; _ }, None ->
    let kernel, init = Lang.Compile.inflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init (Lang.Forever.make ~kernel ~event))
    in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_inflationary ~samples rng query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      diagnostics = base_diags @ [ ("samples", string_of_int samples) ] @ domain_diags;
    }
  | Inflationary, Exact_partitioned, _ ->
    err "partitioned evaluation applies to non-inflationary queries"
  | Noninflationary, Exact, None ->
    let kernel, init = Lang.Compile.noninflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.result;
      exact = Some a.Exact_noninflationary.result;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.num_states);
            ("irreducible", string_of_bool a.Exact_noninflationary.irreducible);
            ("ergodic", string_of_bool a.Exact_noninflationary.ergodic)
          ];
    }
  | Noninflationary, Exact_partitioned, None ->
    let p = Partition.eval_noninflationary ?max_states program db event in
    let parts = Partition.classes program db in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      diagnostics = base_diags @ [ ("partition classes", string_of_int (List.length parts)) ];
    }
  | Noninflationary, Sampling { eps; delta; burn_in }, None ->
    let kernel, init = Lang.Compile.noninflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_noninflationary rng ~burn_in ~samples query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      diagnostics =
        base_diags
        @ [ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
        @ domain_diags;
    }

let pp_semantics fmt = function
  | Inflationary -> Format.pp_print_string fmt "inflationary"
  | Noninflationary -> Format.pp_print_string fmt "non-inflationary"

let pp_method fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Exact_partitioned -> Format.pp_print_string fmt "exact (partitioned)"
  | Exact_lumped -> Format.pp_print_string fmt "exact (lumped)"
  | Sampling { eps; delta; burn_in } ->
    Format.fprintf fmt "sampling (eps=%g delta=%g burn-in=%d)" eps delta burn_in

let pp_report fmt r =
  Format.fprintf fmt "@[<v>semantics : %a@,method    : %a@,answer    : %.6f" pp_semantics
    r.semantics pp_method r.method_ r.probability;
  (match r.exact with
   | Some q -> Format.fprintf fmt "@,exact     : %s" (Q.to_string q)
   | None -> ());
  List.iter (fun (k, v) -> Format.fprintf fmt "@,%-10s: %s" k v) r.diagnostics;
  Format.fprintf fmt "@]"
