module Q = Bigq.Q

type semantics =
  | Inflationary
  | Noninflationary

type strategy =
  | Naive
  | Semi_naive

type method_ =
  | Exact
  | Exact_partitioned
  | Exact_lumped
  | Sampling of {
      eps : float;
      delta : float;
      burn_in : int;
    }
  | Time_average of {
      steps : int;
      burn_in : int;
    }

type stats = {
  engine : string;
  steps : int;
  states : int;
  draws : int;
  elapsed_ms : float;
  phases : (string * float) list;
  operators : (string * int * float) list;
  shards : Obs.shard list;
  series : (string * int) list;
}

type outcome =
  | Complete
  | Partial of {
      reason : Guard.reason;
      completed : int;
      requested : int;
      ci : (float * float) option;
    }

type downgrade = {
  from_ : string;
  to_ : string;
  trigger : string;
}

type budget_policy =
  | Fail
  | Degrade
  | Fallback of {
      eps : float;
      delta : float;
      burn_in : int;
    }

type report = {
  probability : float;
  exact : Q.t option;
  semantics : semantics;
  method_ : method_;
  stats : stats option;
  diagnostics : (string * string) list;
  outcome : outcome;
  downgrade : downgrade option;
}

exception Engine_error of string

let err fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

let engine_name semantics method_ =
  match (semantics, method_) with
  | _, Time_average _ -> "time-average"
  | Inflationary, (Exact | Exact_partitioned | Exact_lumped) -> "exact-inflationary"
  | Noninflationary, Exact -> "exact-noninflationary"
  | Noninflationary, Exact_partitioned -> "exact-partitioned"
  | Noninflationary, Exact_lumped -> "exact-lumped"
  | Inflationary, Sampling _ -> "sample-inflationary"
  | Noninflationary, Sampling _ -> "sample-noninflationary"

let method_slug = function
  | Exact -> "exact"
  | Exact_partitioned -> "exact-partitioned"
  | Exact_lumped -> "exact-lumped"
  | Sampling _ -> "sampling"
  | Time_average _ -> "time-average"

let semantics_slug = function
  | Inflationary -> "inflationary"
  | Noninflationary -> "noninflationary"

(* Assemble the run's stats from the [Obs] tables.  Step counts come from
   whichever layer drove the run: the samplers ("engine.steps") or chain
   exploration ("chain.expanded"); likewise states.  Draw counts are
   repair-key draws plus raw chain-walk draws. *)
let collect_stats ~engine ~elapsed_ms =
  let steps = Obs.count_of "engine.steps" + Obs.count_of "chain.expanded" in
  let states =
    let chain_states = Obs.count_of "chain.states" in
    if chain_states > 0 then chain_states else Obs.count_of "engine.states"
  in
  let draws = Obs.count_of "repair_key.draws" + Obs.count_of "walk.steps" in
  let operators =
    List.filter
      (fun (name, _, _) ->
        String.starts_with ~prefix:"plan." name || String.starts_with ~prefix:"pplan." name)
      (Obs.snapshot ())
  in
  {
    engine;
    steps;
    states;
    draws;
    elapsed_ms;
    phases = Obs.phases ();
    operators;
    shards = Obs.shards ();
    series = Obs.Series.counts ();
  }

(* Runtime inputs of a prepared program: everything [execute] varies per
   request while the compiled artifacts stay fixed. *)
type exec_env = {
  rng : Random.State.t;
  env_max_states : int option;
  env_max_steps : int option;
  env_domains : int option;
  env_guard : Guard.t;
  env_on_budget : budget_policy;
  env_ckpt : Pool.ckpt option;
}

type prepared = {
  prep_semantics : semantics;
  prep_method : method_;
  prep_exec : exec_env -> report;
}

let prepare ?(optimize = false) ?(plan = true) ?(strategy = Semi_naive)
    ?(magic = false) ~semantics ~method_ (parsed : Lang.Parser.parsed) =
  let event =
    match parsed.Lang.Parser.event with
    | Some e -> e
    | None -> err "program has no ?- event"
  in
  let program = parsed.Lang.Parser.program in
  (* Magic-sets demand rewrite: specialise program and event to the ground
     tuple the event asks about.  Only the inflationary semantics supports
     it — non-inflationary IDB relations are destructively recomputed, so
     restricting derivations there is not conservative. *)
  let magic_diags, program, event =
    if not magic then ([], program, event)
    else
      match semantics with
      | Noninflationary ->
        ([ ("magic", "ignored (non-inflationary semantics)") ], program, event)
      | Inflationary ->
        let m = Obs.phase "rewrite" (fun () -> Lang.Magic.rewrite ~event program) in
        ( [ ("magic", Format.asprintf "%a" Lang.Magic.pp_stats (Lang.Magic.stats m)) ],
          Lang.Magic.program m,
          Lang.Magic.event m )
  in
  let ctable = Lang.Parser.ctable_of parsed in
  let db = Lang.Parser.database_of_facts parsed.Lang.Parser.facts in
  let maybe_optimize kernel init =
    if not optimize then kernel
    else
      Prob.Optimize.interp ~schema_of:(Lang.Compile.schema_of_database init) kernel
  in
  (* Compile the (already optimised) kernel to physical plans against the
     initial database's schemas; stepping is then plan execution.  The
     results — exact distributions and fixed-seed samples alike — are
     identical to the interpreted kernel's. *)
  let compile_query init query =
    if not plan then query
    else
      Obs.phase "compile" (fun () ->
          Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) query)
  in
  (* The semi-naive stepper is itself built from compiled delta plans, so
     it only applies to plan-executing runs — [--interpreted] implies the
     naive stepper, as does [--naive]. *)
  let effective_strategy = if plan then strategy else Naive in
  let install_seminaive init query =
    match effective_strategy with
    | Naive -> (query, [ ("plan strategy", "naive") ])
    | Semi_naive ->
      Obs.phase "compile" (fun () ->
          let sn =
            Lang.Seminaive.compile ~optimize
              ~schema_of:(Lang.Compile.schema_of_database init) program
          in
          ( Lang.Seminaive.install sn query,
            [ ( "plan strategy",
                Printf.sprintf "semi-naive (%d/%d rule plans incremental)"
                  (Lang.Seminaive.incremental_rules sn) (Lang.Seminaive.total_rules sn) )
            ] ))
  in
  (* [domains = None] keeps the sequential samplers and their original RNG
     streams (seed-compatible with earlier releases); [Some d] routes every
     sampling method through the sharded parallel evaluators, whose result
     for a fixed seed is the same for any [d] >= 1.  Checkpointing needs
     the sharded path (per-shard RNG snapshots), so [ckpt] forces it at
     [domains = 1] when no domain count was given. *)
  let sample_inflationary env ?init_sampler ~samples rng query init =
    Obs.phase "sample" @@ fun () ->
    match (env.env_domains, env.env_ckpt) with
    | None, None ->
      Sample_inflationary.run_samples ?max_steps:env.env_max_steps ?init_sampler
        ~guard:env.env_guard ~samples rng query init
    | d, _ ->
      let domains = match d with Some d -> d | None -> 1 in
      Sample_inflationary.run_samples_par ?max_steps:env.env_max_steps ?init_sampler
        ~guard:env.env_guard ?ckpt:env.env_ckpt ~domains ~samples rng query init
  in
  let sample_noninflationary env rng ~burn_in ~samples query init =
    Obs.phase "sample" @@ fun () ->
    match (env.env_domains, env.env_ckpt) with
    | None, None ->
      Sample_noninflationary.run_samples ~guard:env.env_guard rng ~burn_in ~samples query init
    | d, _ ->
      let domains = match d with Some d -> d | None -> 1 in
      Sample_noninflationary.run_samples_par ~guard:env.env_guard ?ckpt:env.env_ckpt rng
        ~domains ~burn_in ~samples query init
  in
  let domain_diags env =
    match env.env_domains with None -> [] | Some d -> [ ("domains", string_of_int d) ]
  in
  let base_diags =
    [ ("rules", string_of_int (List.length program));
      ("facts", string_of_int (List.length parsed.Lang.Parser.facts));
      ("plan", string_of_bool plan);
      ("linear", string_of_bool (Lang.Linearity.is_linear program));
      ("repair-key on base only", string_of_bool (Lang.Linearity.repair_key_on_base_only program))
    ]
    @ magic_diags
  in
  let mk ?exact ?(outcome = Complete) ?downgrade ~probability diags =
    {
      probability;
      exact;
      semantics;
      method_;
      stats = None;
      diagnostics = base_diags @ diags;
      outcome;
      downgrade;
    }
  in
  (* A sampling run's report: complete when the pool/sequential loop ran
     every requested sample, otherwise Partial carrying the best estimate
     so far with its Wilson 95% CI (the Thm 4.3 / Thm 5.6 guarantee only
     covers the full sample count, so the partial answer is reported as an
     interval, not a certified point). *)
  let sample_report env ?downgrade ~diags (r : Pool.run) =
    let completed = r.Pool.completed in
    let probability =
      if completed = 0 then Float.nan
      else float_of_int r.Pool.hits /. float_of_int completed
    in
    match r.Pool.stopped with
    | None -> mk ~probability ?downgrade (diags @ domain_diags env)
    | Some reason ->
      if env.env_on_budget = Fail then
        err "sampling stopped before completion (--on-budget fail): %s"
          (Guard.describe reason);
      let ci = Obs.wilson_interval ~hits:r.Pool.hits ~total:completed in
      mk ~probability ?downgrade
        ~outcome:
          (Partial { reason; completed; requested = r.Pool.requested; ci = Some ci })
        (diags
        @ [ ("completed samples", Printf.sprintf "%d/%d" completed r.Pool.requested) ]
        @ domain_diags env)
  in
  (* Exact evaluation ran out of budget: under [Fail] raise; under
     [Degrade] (and under [Fallback] for reasons a sampler cannot outrun,
     i.e. anything but the state budget) report how far enumeration got.
     [Fallback] on a blown state budget re-runs the query with the sampler
     — exactly where Thm 4.3/5.6 keep the approximation sound — and records
     the downgrade. *)
  let on_exhausted_exact env reason ~diags ~fallback =
    match (env.env_on_budget, reason) with
    | Fail, _ ->
      err "budget exhausted during exact evaluation (--on-budget fail): %s"
        (Guard.describe reason)
    | Fallback { eps; delta; burn_in }, Guard.States _ ->
      let dg =
        { from_ = method_slug method_; to_ = "sampling"; trigger = Guard.reason_slug reason }
      in
      fallback ~eps ~delta ~burn_in ~downgrade:dg
    | (Degrade | Fallback _), _ ->
      let explored = Guard.states_reached env.env_guard in
      let requested =
        match Guard.state_budget env.env_guard with Some b -> b | None -> 0
      in
      mk ~probability:Float.nan
        ~outcome:(Partial { reason; completed = explored; requested; ci = None })
        (diags @ [ ("states explored", string_of_int explored) ])
  in
  let fallback_noninflationary env ~query ~init ~eps ~delta ~burn_in ~downgrade =
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let r = sample_noninflationary env env.rng ~burn_in ~samples query init in
    sample_report env r ~downgrade
      ~diags:[ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
  in
  (* Each branch does its compile-time work NOW (kernel compilation, plan
     compilation, semi-naive installation — all seed-independent) and
     returns the runtime closure.  Branches whose compilation consumes RNG
     draws (pc-table sampling probes a world for schemas) compile inside the
     closure instead: re-preparation per request is what keeps fixed-seed
     estimates draw-identical to the one-shot path, and a cached [prepared]
     stays trivially reusable. *)
  let exec =
    match (semantics, method_, ctable) with
      | Inflationary, Time_average _, _ ->
        err "time-average evaluation applies to non-inflationary queries"
      | Noninflationary, Time_average { steps; burn_in }, ct ->
        let kernel, init =
          match ct with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let kernel = maybe_optimize kernel init in
        let query = compile_query init (Lang.Forever.make ~kernel ~event) in
        fun env ->
          let p =
            Obs.phase "sample" (fun () ->
                Sample_noninflationary.eval_time_average env.rng ~burn_in ~steps query init)
          in
          mk ~probability:p
            [ ("steps", string_of_int steps); ("burn-in", string_of_int burn_in) ]
      | Inflationary, Exact, Some ct -> begin
        (* pc-table input: choices are made once (Section 3.3), so average
           the per-world exact answers. *)
        let seminaive = effective_strategy = Semi_naive in
        let strat_diags =
          [ ( "plan strategy",
              if seminaive then "semi-naive (shared delta plan)" else "naive" )
          ]
        in
        fun env ->
          match
            Obs.phase "evaluate" (fun () ->
                Exact_inflationary.eval_ctable ~guard:env.env_guard ~plan ~seminaive ~program
                  ~event ct)
          with
          | p ->
            mk ~probability:(Q.to_float p) ?exact:(Some p)
              ([ ("pc-table worlds", string_of_int (Prob.Ctable.num_worlds ct)) ]
              @ strat_diags)
          | exception Guard.Exhausted reason ->
            on_exhausted_exact env reason
              ~diags:[ ("pc-table worlds", string_of_int (Prob.Ctable.num_worlds ct)) ]
              ~fallback:(fun ~eps ~delta ~burn_in:_ ~downgrade ->
                let sampler = Sample_inflationary.ctable_sampler ~program ct in
                let kernel, init0 =
                  Lang.Compile.inflationary_kernel program (sampler env.rng)
                in
                let query =
                  Lang.Inflationary.of_forever_unchecked
                    (compile_query init0 (Lang.Forever.make ~kernel ~event))
                in
                let samples = Sample_inflationary.samples_needed ~eps ~delta in
                let r =
                  sample_inflationary env ~init_sampler:sampler ~samples env.rng query
                    Relational.Database.empty
                in
                sample_report env r ~downgrade ~diags:[ ("samples", string_of_int samples) ])
      end
      | Inflationary, Sampling { eps; delta; _ }, Some ct ->
        let samples = Sample_inflationary.samples_needed ~eps ~delta in
        fun env ->
          let sampler = Sample_inflationary.ctable_sampler ~program ct in
          (* All worlds of the c-table share schemas, so one world's initial
             database is a valid schema table for the compiled plans.  The
             schema probe consumes RNG draws, so compilation happens here,
             per request, against this request's stream. *)
          let kernel, init0 = Lang.Compile.inflationary_kernel program (sampler env.rng) in
          let query =
            Lang.Inflationary.of_forever_unchecked
              (compile_query init0 (Lang.Forever.make ~kernel ~event))
          in
          let r =
            sample_inflationary env ~init_sampler:sampler ~samples env.rng query
              Relational.Database.empty
          in
          sample_report env r ~diags:[ ("samples", string_of_int samples) ]
      | Noninflationary, Exact, ct -> begin
        let kernel, init =
          match ct with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let kernel = maybe_optimize kernel init in
        let query = compile_query init (Lang.Forever.make ~kernel ~event) in
        fun env ->
          match
            Exact_noninflationary.analyse ?max_states:env.env_max_states ~guard:env.env_guard
              query init
          with
          | a ->
            mk
              ~probability:(Q.to_float a.Exact_noninflationary.result)
              ?exact:(Some a.Exact_noninflationary.result)
              [ ("chain states", string_of_int a.Exact_noninflationary.num_states);
                ("irreducible", string_of_bool a.Exact_noninflationary.irreducible);
                ("ergodic", string_of_bool a.Exact_noninflationary.ergodic)
              ]
          | exception Guard.Exhausted reason ->
            on_exhausted_exact env reason ~diags:[]
              ~fallback:(fun ~eps ~delta ~burn_in ~downgrade ->
                fallback_noninflationary env ~query ~init ~eps ~delta ~burn_in ~downgrade)
      end
      | Noninflationary, Sampling { eps; delta; burn_in }, ct ->
        let kernel, init =
          match ct with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let kernel = maybe_optimize kernel init in
        let query = compile_query init (Lang.Forever.make ~kernel ~event) in
        let samples = Sample_inflationary.samples_needed ~eps ~delta in
        fun env ->
          let r = sample_noninflationary env env.rng ~burn_in ~samples query init in
          sample_report env r
            ~diags:[ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
      | _, Exact_partitioned, Some _ ->
        err "partitioned evaluation does not support pc-table inputs"
      | Inflationary, Exact_lumped, _ ->
        err "lumped evaluation applies to non-inflationary queries"
      | Noninflationary, Exact_lumped, ct -> begin
        let kernel, init =
          match ct with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let kernel = maybe_optimize kernel init in
        let query = compile_query init (Lang.Forever.make ~kernel ~event) in
        fun env ->
          match
            Exact_noninflationary.analyse_lumped ?max_states:env.env_max_states
              ~guard:env.env_guard query init
          with
          | a ->
            mk
              ~probability:(Q.to_float a.Exact_noninflationary.lumped_result)
              ?exact:(Some a.Exact_noninflationary.lumped_result)
              [ ("chain states", string_of_int a.Exact_noninflationary.states_before);
                ("lumped classes", string_of_int a.Exact_noninflationary.states_after);
                ("lumped", string_of_bool a.Exact_noninflationary.lumped)
              ]
          | exception Guard.Exhausted reason ->
            on_exhausted_exact env reason ~diags:[]
              ~fallback:(fun ~eps ~delta ~burn_in ~downgrade ->
                fallback_noninflationary env ~query ~init ~eps ~delta ~burn_in ~downgrade)
      end
      | Inflationary, Exact, None -> begin
        let kernel, init = Lang.Compile.inflationary_kernel program db in
        let kernel = maybe_optimize kernel init in
        let fq, strat_diags =
          install_seminaive init (compile_query init (Lang.Forever.make ~kernel ~event))
        in
        let query = Lang.Inflationary.of_forever_unchecked fq in
        fun env ->
          match
            Obs.phase "evaluate" (fun () ->
                Exact_inflationary.eval_with_stats ~guard:env.env_guard query init)
          with
          | p, st ->
            mk ~probability:(Q.to_float p) ?exact:(Some p)
              ([ ("states visited", string_of_int st.Exact_inflationary.states_visited);
                 ("fixpoints", string_of_int st.Exact_inflationary.fixpoints)
               ]
              @ strat_diags)
          | exception Guard.Exhausted reason ->
            on_exhausted_exact env reason ~diags:[]
              ~fallback:(fun ~eps ~delta ~burn_in:_ ~downgrade ->
                let samples = Sample_inflationary.samples_needed ~eps ~delta in
                let r = sample_inflationary env ~samples env.rng query init in
                sample_report env r ~downgrade ~diags:[ ("samples", string_of_int samples) ])
      end
      | Inflationary, Sampling { eps; delta; _ }, None ->
        let kernel, init = Lang.Compile.inflationary_kernel program db in
        let kernel = maybe_optimize kernel init in
        let query =
          Lang.Inflationary.of_forever_unchecked
            (compile_query init (Lang.Forever.make ~kernel ~event))
        in
        let samples = Sample_inflationary.samples_needed ~eps ~delta in
        fun env ->
          let r = sample_inflationary env ~samples env.rng query init in
          sample_report env r ~diags:[ ("samples", string_of_int samples) ]
      | Inflationary, Exact_partitioned, _ ->
        err "partitioned evaluation applies to non-inflationary queries"
      | Noninflationary, Exact_partitioned, None ->
        fun env ->
          let p =
            Partition.eval_noninflationary ?max_states:env.env_max_states program db event
          in
          let parts = Partition.classes program db in
          mk ~probability:(Q.to_float p) ?exact:(Some p)
            [ ("partition classes", string_of_int (List.length parts)) ]
  in
  { prep_semantics = semantics; prep_method = method_; prep_exec = exec }

(* Boundary for sampler divergence and worker failure: translated into
   [Engine_error]s that carry where the failure happened, instead of a
   raw exception escaping from an anonymous worker domain. *)
let exec_prepared (p : prepared) env =
  try p.prep_exec env with
  | Sample_inflationary.Did_not_converge n ->
    err "sampling did not reach a fixpoint within %d steps (sequential sampler)" n
  | Pool.Worker_error { shard; completed; exn = Sample_inflationary.Did_not_converge n; _ }
    ->
    err "sampling did not reach a fixpoint within %d steps (shard %d, %d samples completed)" n
      shard completed
  | Pool.Worker_error { shard; completed; exn; failures } ->
    let others = List.filter (fun f -> f.Pool.shard <> shard) failures in
    let extra =
      if others = [] then ""
      else
        Printf.sprintf " (also failed: shards %s)"
          (String.concat "," (List.map (fun f -> string_of_int f.Pool.shard) others))
    in
    err "worker on shard %d failed after %d samples: %s%s" shard completed
      (Printexc.to_string exn) extra
  | Guard.Checkpoint.Error m -> err "checkpoint error: %s" m

let make_env ~seed ~max_states ~max_steps ~domains ~guard ~on_budget ~ckpt =
  {
    rng = Random.State.make [| seed |];
    env_max_states = max_states;
    env_max_steps = max_steps;
    env_domains = domains;
    env_guard = guard;
    env_on_budget = on_budget;
    env_ckpt = ckpt;
  }

(* Run a prepared program.  No stats bracket of its own: the caller owns
   the current [Obs] scope (a server gives each request a private one and
   enables it there); with [stats] the report carries whatever that scope
   collected, timed from this call — compile time is the caller's concern,
   which is the point of caching prepared programs. *)
let execute ?(seed = 0) ?max_states ?max_steps ?domains ?(guard = Guard.unlimited)
    ?(on_budget = Degrade) ?ckpt ?(stats = false) (p : prepared) =
  let t0 = Obs.now_ns () in
  let env = make_env ~seed ~max_states ~max_steps ~domains ~guard ~on_budget ~ckpt in
  let base = exec_prepared p env in
  if not stats then base
  else begin
    let elapsed_ms = Obs.ms_of_ns (Obs.now_ns () - t0) in
    { base with
      stats =
        Some (collect_stats ~engine:(engine_name p.prep_semantics p.prep_method) ~elapsed_ms)
    }
  end

let run ?(seed = 0) ?max_states ?max_steps ?(optimize = false) ?(plan = true)
    ?(strategy = Semi_naive) ?(magic = false) ?domains
    ?(guard = Guard.unlimited) ?(on_budget = Degrade) ?ckpt ?(stats = false)
    ?(trace = false) ?(series = false) ~semantics ~method_ (parsed : Lang.Parser.parsed) =
  let series = series || trace in
  let obs_was = Obs.enabled () in
  if stats then begin
    Obs.reset ();
    Obs.set_enabled true
  end;
  (* Trace/Series stay untouched when a caller (a CLI accumulating over
     several ?- events) enabled them already; otherwise they are reset here
     and disabled on the way out — the recorded buffers survive disabling,
     so the caller can still flush them. *)
  let trace_was = Obs.Trace.enabled () in
  let series_was = Obs.Series.enabled () in
  if trace && not trace_was then begin
    Obs.Trace.reset ();
    Obs.Trace.set_enabled true
  end;
  if series && not series_was then begin
    Obs.Series.reset ();
    Obs.Series.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      if stats && not obs_was then Obs.set_enabled false;
      if trace && not trace_was then Obs.Trace.set_enabled false;
      if series && not series_was then Obs.Series.set_enabled false)
  @@ fun () ->
  let t0 = Obs.now_ns () in
  let p = prepare ~optimize ~plan ~strategy ~magic ~semantics ~method_ parsed in
  let env = make_env ~seed ~max_states ~max_steps ~domains ~guard ~on_budget ~ckpt in
  let base = exec_prepared p env in
  if not stats then base
  else begin
    let elapsed_ms = Obs.ms_of_ns (Obs.now_ns () - t0) in
    { base with stats = Some (collect_stats ~engine:(engine_name semantics method_) ~elapsed_ms) }
  end

let pp_semantics fmt = function
  | Inflationary -> Format.pp_print_string fmt "inflationary"
  | Noninflationary -> Format.pp_print_string fmt "non-inflationary"

let pp_method fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Exact_partitioned -> Format.pp_print_string fmt "exact (partitioned)"
  | Exact_lumped -> Format.pp_print_string fmt "exact (lumped)"
  | Sampling { eps; delta; burn_in } ->
    Format.fprintf fmt "sampling (eps=%g delta=%g burn-in=%d)" eps delta burn_in
  | Time_average { steps; burn_in } ->
    Format.fprintf fmt "time-average (steps=%d burn-in=%d)" steps burn_in

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>engine    : %s@,steps     : %d@,states    : %d@,draws     : %d"
    s.engine s.steps s.states s.draws;
  Format.fprintf fmt "@,elapsed   : %.3f ms" s.elapsed_ms;
  if s.phases <> [] then begin
    Format.fprintf fmt "@,phases    :";
    List.iter (fun (name, ms) -> Format.fprintf fmt "@,  %-12s %10.3f ms" name ms) s.phases
  end;
  if s.operators <> [] then begin
    Format.fprintf fmt "@,operators :";
    List.iter
      (fun (name, ticks, ms) ->
        Format.fprintf fmt "@,  %-18s %10d ticks %10.3f ms" name ticks ms)
      s.operators
  end;
  if s.shards <> [] then begin
    Format.fprintf fmt "@,shards    :";
    List.iter
      (fun { Obs.shard; samples; hits; ms } ->
        Format.fprintf fmt "@,  %4d %8d samples %8d hits %10.3f ms" shard samples hits ms)
      s.shards
  end;
  if s.series <> [] then begin
    Format.fprintf fmt "@,series    :";
    List.iter
      (fun (name, points) -> Format.fprintf fmt "@,  %-22s %8d points" name points)
      s.series
  end;
  Format.fprintf fmt "@]"

let pp_report fmt r =
  Format.fprintf fmt "@[<v>semantics : %a@,method    : %a@,answer    : %.6f" pp_semantics
    r.semantics pp_method r.method_ r.probability;
  (match r.exact with
   | Some q -> Format.fprintf fmt "@,exact     : %s" (Q.to_string q)
   | None -> ());
  (match r.outcome with
   | Complete -> ()
   | Partial { reason; completed; requested; ci } ->
     Format.fprintf fmt "@,outcome   : partial — %s (%d/%d completed)" (Guard.describe reason)
       completed requested;
     (match ci with
      | Some (lo, hi) -> Format.fprintf fmt "@,ci95      : [%.6f, %.6f]" lo hi
      | None -> ()));
  (match r.downgrade with
   | Some d -> Format.fprintf fmt "@,downgrade : %s -> %s (%s)" d.from_ d.to_ d.trigger
   | None -> ());
  List.iter (fun (k, v) -> Format.fprintf fmt "@,%-10s: %s" k v) r.diagnostics;
  (match r.stats with
   | Some s -> Format.fprintf fmt "@,--- stats ---@,%a" pp_stats s
   | None -> ());
  Format.fprintf fmt "@]"

(* The documented "probdb.stats/3" schema (see README): always carries
   engine/steps/states/draws/elapsed_ms; phases/operators/shards hold
   whatever the run populated.  /2 added the [series] summary block (point
   counts per recorded series name; full points go to [--series-json]); /3
   added [outcome] (complete/partial with reason, progress and Wilson CI)
   and [downgrade] (recorded exact-to-sampling fallback, else null). *)
let json_of_stats s =
  let open Obs.Json in
  Obj
    [ ("engine", Str s.engine);
      ("steps", Int s.steps);
      ("states", Int s.states);
      ("draws", Int s.draws);
      ("elapsed_ms", Float s.elapsed_ms);
      ("phases", Obj (List.map (fun (name, ms) -> (name, Float ms)) s.phases));
      ( "operators",
        Obj
          (List.map
             (fun (name, ticks, ms) ->
               (name, Obj [ ("ticks", Int ticks); ("ms", Float ms) ]))
             s.operators) );
      ( "shards",
        List
          (List.map
             (fun { Obs.shard; samples; hits; ms } ->
               Obj
                 [ ("shard", Int shard);
                   ("samples", Int samples);
                   ("hits", Int hits);
                   ("ms", Float ms)
                 ])
             s.shards) );
      ("series", Obj (List.map (fun (name, points) -> (name, Int points)) s.series))
    ]

let json_of_outcome =
  let open Obs.Json in
  function
  | Complete -> Obj [ ("status", Str "complete") ]
  | Partial { reason; completed; requested; ci } ->
    Obj
      ([ ("status", Str "partial");
         ("reason", Str (Guard.reason_slug reason));
         ("detail", Str (Guard.describe reason));
         ("completed", Int completed);
         ("requested", Int requested)
       ]
      @
      match ci with
      | Some (lo, hi) -> [ ("ci_low", Float lo); ("ci_high", Float hi) ]
      | None -> [])

let json_of_report ~tool r =
  let open Obs.Json in
  let stats_fields =
    match r.stats with
    | Some s -> (match json_of_stats s with Obj fields -> fields | _ -> assert false)
    | None -> []
  in
  Obj
    ([ ("schema", Str "probdb.stats/3");
       ("tool", Str tool);
       ("semantics", Str (semantics_slug r.semantics));
       ("method", Str (method_slug r.method_));
       ("probability", Float r.probability);
       ("exact", match r.exact with Some q -> Str (Q.to_string q) | None -> Null);
       ("outcome", json_of_outcome r.outcome);
       ( "downgrade",
         match r.downgrade with
         | Some d ->
           Obj [ ("from", Str d.from_); ("to", Str d.to_); ("trigger", Str d.trigger) ]
         | None -> Null )
     ]
    @ stats_fields
    @ [ ("diagnostics", Obj (List.map (fun (k, v) -> (k, Str v)) r.diagnostics)) ])
