module Q = Bigq.Q

type semantics =
  | Inflationary
  | Noninflationary

type method_ =
  | Exact
  | Exact_partitioned
  | Exact_lumped
  | Sampling of {
      eps : float;
      delta : float;
      burn_in : int;
    }
  | Time_average of {
      steps : int;
      burn_in : int;
    }

type stats = {
  engine : string;
  steps : int;
  states : int;
  draws : int;
  elapsed_ms : float;
  phases : (string * float) list;
  operators : (string * int * float) list;
  shards : Obs.shard list;
  series : (string * int) list;
}

type report = {
  probability : float;
  exact : Q.t option;
  semantics : semantics;
  method_ : method_;
  stats : stats option;
  diagnostics : (string * string) list;
}

exception Engine_error of string

let err fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

let engine_name semantics method_ =
  match (semantics, method_) with
  | _, Time_average _ -> "time-average"
  | Inflationary, (Exact | Exact_partitioned | Exact_lumped) -> "exact-inflationary"
  | Noninflationary, Exact -> "exact-noninflationary"
  | Noninflationary, Exact_partitioned -> "exact-partitioned"
  | Noninflationary, Exact_lumped -> "exact-lumped"
  | Inflationary, Sampling _ -> "sample-inflationary"
  | Noninflationary, Sampling _ -> "sample-noninflationary"

(* Assemble the run's stats from the [Obs] tables.  Step counts come from
   whichever layer drove the run: the samplers ("engine.steps") or chain
   exploration ("chain.expanded"); likewise states.  Draw counts are
   repair-key draws plus raw chain-walk draws. *)
let collect_stats ~engine ~elapsed_ms =
  let steps = Obs.count_of "engine.steps" + Obs.count_of "chain.expanded" in
  let states =
    let chain_states = Obs.count_of "chain.states" in
    if chain_states > 0 then chain_states else Obs.count_of "engine.states"
  in
  let draws = Obs.count_of "repair_key.draws" + Obs.count_of "walk.steps" in
  let operators =
    List.filter
      (fun (name, _, _) ->
        String.starts_with ~prefix:"plan." name || String.starts_with ~prefix:"pplan." name)
      (Obs.snapshot ())
  in
  {
    engine;
    steps;
    states;
    draws;
    elapsed_ms;
    phases = Obs.phases ();
    operators;
    shards = Obs.shards ();
    series = Obs.Series.counts ();
  }

let run ?(seed = 0) ?max_states ?max_steps ?(optimize = false) ?(plan = true) ?domains
    ?(stats = false) ?(trace = false) ?(series = false) ~semantics ~method_
    (parsed : Lang.Parser.parsed) =
  let series = series || trace in
  let obs_was = Obs.enabled () in
  if stats then begin
    Obs.reset ();
    Obs.set_enabled true
  end;
  (* Trace/Series stay untouched when a caller (a CLI accumulating over
     several ?- events) enabled them already; otherwise they are reset here
     and disabled on the way out — the recorded buffers survive disabling,
     so the caller can still flush them. *)
  let trace_was = Obs.Trace.enabled () in
  let series_was = Obs.Series.enabled () in
  if trace && not trace_was then begin
    Obs.Trace.reset ();
    Obs.Trace.set_enabled true
  end;
  if series && not series_was then begin
    Obs.Series.reset ();
    Obs.Series.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      if stats && not obs_was then Obs.set_enabled false;
      if trace && not trace_was then Obs.Trace.set_enabled false;
      if series && not series_was then Obs.Series.set_enabled false)
  @@ fun () ->
  let t0 = Obs.now_ns () in
  let event =
    match parsed.Lang.Parser.event with
    | Some e -> e
    | None -> err "program has no ?- event"
  in
  let program = parsed.Lang.Parser.program in
  let ctable = Lang.Parser.ctable_of parsed in
  let db = Lang.Parser.database_of_facts parsed.Lang.Parser.facts in
  let rng = Random.State.make [| seed |] in
  let maybe_optimize kernel init =
    if not optimize then kernel
    else
      Prob.Optimize.interp ~schema_of:(Lang.Compile.schema_of_database init) kernel
  in
  (* Compile the (already optimised) kernel to physical plans against the
     initial database's schemas; stepping is then plan execution.  The
     results — exact distributions and fixed-seed samples alike — are
     identical to the interpreted kernel's. *)
  let compile_query init query =
    if not plan then query
    else
      Obs.phase "compile" (fun () ->
          Lang.Forever.compile ~schema_of:(Lang.Compile.schema_of_database init) query)
  in
  (* [domains = None] keeps the sequential samplers and their original RNG
     streams (seed-compatible with earlier releases); [Some d] routes every
     sampling method through the sharded parallel evaluators, whose result
     for a fixed seed is the same for any [d] >= 1. *)
  let sample_inflationary ?init_sampler ~samples rng query init =
    Obs.phase "sample" @@ fun () ->
    match domains with
    | None -> Sample_inflationary.eval ?max_steps ?init_sampler ~samples rng query init
    | Some d ->
      Sample_inflationary.eval_par ?max_steps ?init_sampler ~domains:d ~samples rng query init
  in
  let sample_noninflationary rng ~burn_in ~samples query init =
    Obs.phase "sample" @@ fun () ->
    match domains with
    | None -> Sample_noninflationary.eval rng ~burn_in ~samples query init
    | Some d -> Sample_noninflationary.eval_par rng ~domains:d ~burn_in ~samples query init
  in
  let domain_diags =
    match domains with None -> [] | Some d -> [ ("domains", string_of_int d) ]
  in
  let base_diags =
    [ ("rules", string_of_int (List.length program));
      ("facts", string_of_int (List.length parsed.Lang.Parser.facts));
      ("plan", string_of_bool plan);
      ("linear", string_of_bool (Lang.Linearity.is_linear program));
      ("repair-key on base only", string_of_bool (Lang.Linearity.repair_key_on_base_only program))
    ]
  in
  let base =
    try
      match (semantics, method_, ctable) with
      | Inflationary, Time_average _, _ ->
        err "time-average evaluation applies to non-inflationary queries"
      | Noninflationary, Time_average { steps; burn_in }, ct ->
        let kernel, init =
          match ct with
          | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
          | None -> Lang.Compile.noninflationary_kernel program db
        in
        let kernel = maybe_optimize kernel init in
        let query = compile_query init (Lang.Forever.make ~kernel ~event) in
        let p =
          Obs.phase "sample" (fun () ->
              Sample_noninflationary.eval_time_average rng ~burn_in ~steps query init)
        in
        {
          probability = p;
          exact = None;
          semantics;
          method_;
          stats = None;
          diagnostics =
            base_diags
            @ [ ("steps", string_of_int steps); ("burn-in", string_of_int burn_in) ];
        }
      | Inflationary, Exact, Some ct ->
    (* pc-table input: choices are made once (Section 3.3), so average the
       per-world exact answers. *)
    let p =
      Obs.phase "evaluate" (fun () -> Exact_inflationary.eval_ctable ~plan ~program ~event ct)
    in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      stats = None;
      diagnostics = base_diags @ [ ("pc-table worlds", string_of_int (Prob.Ctable.num_worlds ct)) ];
    }
  | Inflationary, Sampling { eps; delta; _ }, Some ct ->
    let sampler = Sample_inflationary.ctable_sampler ~program ct in
    (* All worlds of the c-table share schemas, so one world's initial
       database is a valid schema table for the compiled plans. *)
    let kernel, init0 = Lang.Compile.inflationary_kernel program (sampler rng) in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init0 (Lang.Forever.make ~kernel ~event))
    in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p =
      sample_inflationary ~init_sampler:sampler ~samples rng query Relational.Database.empty
    in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      stats = None;
      diagnostics = base_diags @ [ ("samples", string_of_int samples) ] @ domain_diags;
    }
  | Noninflationary, Exact, Some ct ->
    (* pc-table input: the table is a macro re-sampled every step. *)
    let kernel, init = Lang.Compile.noninflationary_kernel_ctable program ct in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.result;
      exact = Some a.Exact_noninflationary.result;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.num_states);
            ("irreducible", string_of_bool a.Exact_noninflationary.irreducible);
            ("ergodic", string_of_bool a.Exact_noninflationary.ergodic)
          ];
    }
  | Noninflationary, Sampling { eps; delta; burn_in }, Some ct ->
    let kernel, init = Lang.Compile.noninflationary_kernel_ctable program ct in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_noninflationary rng ~burn_in ~samples query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
        @ domain_diags;
    }
  | _, Exact_partitioned, Some _ -> err "partitioned evaluation does not support pc-table inputs"
  | Inflationary, Exact_lumped, _ -> err "lumped evaluation applies to non-inflationary queries"
  | Noninflationary, Exact_lumped, ct ->
    let kernel, init =
      match ct with
      | Some ct -> Lang.Compile.noninflationary_kernel_ctable program ct
      | None -> Lang.Compile.noninflationary_kernel program db
    in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse_lumped ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.lumped_result;
      exact = Some a.Exact_noninflationary.lumped_result;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.states_before);
            ("lumped classes", string_of_int a.Exact_noninflationary.states_after);
            ("lumped", string_of_bool a.Exact_noninflationary.lumped)
          ];
    }
  | Inflationary, Exact, None ->
    let kernel, init = Lang.Compile.inflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init (Lang.Forever.make ~kernel ~event))
    in
    let p, stats = Obs.phase "evaluate" (fun () -> Exact_inflationary.eval_with_stats query init) in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("states visited", string_of_int stats.Exact_inflationary.states_visited);
            ("fixpoints", string_of_int stats.Exact_inflationary.fixpoints)
          ];
    }
  | Inflationary, Sampling { eps; delta; _ }, None ->
    let kernel, init = Lang.Compile.inflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query =
      Lang.Inflationary.of_forever_unchecked
        (compile_query init (Lang.Forever.make ~kernel ~event))
    in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_inflationary ~samples rng query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      stats = None;
      diagnostics = base_diags @ [ ("samples", string_of_int samples) ] @ domain_diags;
    }
  | Inflationary, Exact_partitioned, _ ->
    err "partitioned evaluation applies to non-inflationary queries"
  | Noninflationary, Exact, None ->
    let kernel, init = Lang.Compile.noninflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let a = Exact_noninflationary.analyse ?max_states query init in
    {
      probability = Q.to_float a.Exact_noninflationary.result;
      exact = Some a.Exact_noninflationary.result;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("chain states", string_of_int a.Exact_noninflationary.num_states);
            ("irreducible", string_of_bool a.Exact_noninflationary.irreducible);
            ("ergodic", string_of_bool a.Exact_noninflationary.ergodic)
          ];
    }
  | Noninflationary, Exact_partitioned, None ->
    let p = Partition.eval_noninflationary ?max_states program db event in
    let parts = Partition.classes program db in
    {
      probability = Q.to_float p;
      exact = Some p;
      semantics;
      method_;
      stats = None;
      diagnostics = base_diags @ [ ("partition classes", string_of_int (List.length parts)) ];
    }
  | Noninflationary, Sampling { eps; delta; burn_in }, None ->
    let kernel, init = Lang.Compile.noninflationary_kernel program db in
    let kernel = maybe_optimize kernel init in
    let query = compile_query init (Lang.Forever.make ~kernel ~event) in
    let samples = Sample_inflationary.samples_needed ~eps ~delta in
    let p = sample_noninflationary rng ~burn_in ~samples query init in
    {
      probability = p;
      exact = None;
      semantics;
      method_;
      stats = None;
      diagnostics =
        base_diags
        @ [ ("samples", string_of_int samples); ("burn-in", string_of_int burn_in) ]
        @ domain_diags;
    }
    with
    (* Boundary for sampler divergence: translated into [Engine_error]s
       that carry where the failure happened, instead of a raw exception
       escaping from an anonymous worker domain. *)
    | Sample_inflationary.Did_not_converge n ->
      err "sampling did not reach a fixpoint within %d steps (sequential sampler)" n
    | Pool.Worker_error { shard; completed; exn = Sample_inflationary.Did_not_converge n } ->
      err "sampling did not reach a fixpoint within %d steps (shard %d, %d samples completed)" n
        shard completed
    | Pool.Worker_error { shard; completed; exn } ->
      err "worker on shard %d failed after %d samples: %s" shard completed
        (Printexc.to_string exn)
  in
  if not stats then base
  else begin
    let elapsed_ms = Obs.ms_of_ns (Obs.now_ns () - t0) in
    { base with stats = Some (collect_stats ~engine:(engine_name semantics method_) ~elapsed_ms) }
  end

let pp_semantics fmt = function
  | Inflationary -> Format.pp_print_string fmt "inflationary"
  | Noninflationary -> Format.pp_print_string fmt "non-inflationary"

let pp_method fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Exact_partitioned -> Format.pp_print_string fmt "exact (partitioned)"
  | Exact_lumped -> Format.pp_print_string fmt "exact (lumped)"
  | Sampling { eps; delta; burn_in } ->
    Format.fprintf fmt "sampling (eps=%g delta=%g burn-in=%d)" eps delta burn_in
  | Time_average { steps; burn_in } ->
    Format.fprintf fmt "time-average (steps=%d burn-in=%d)" steps burn_in

let pp_stats fmt s =
  Format.fprintf fmt "@[<v>engine    : %s@,steps     : %d@,states    : %d@,draws     : %d"
    s.engine s.steps s.states s.draws;
  Format.fprintf fmt "@,elapsed   : %.3f ms" s.elapsed_ms;
  if s.phases <> [] then begin
    Format.fprintf fmt "@,phases    :";
    List.iter (fun (name, ms) -> Format.fprintf fmt "@,  %-12s %10.3f ms" name ms) s.phases
  end;
  if s.operators <> [] then begin
    Format.fprintf fmt "@,operators :";
    List.iter
      (fun (name, ticks, ms) ->
        Format.fprintf fmt "@,  %-18s %10d ticks %10.3f ms" name ticks ms)
      s.operators
  end;
  if s.shards <> [] then begin
    Format.fprintf fmt "@,shards    :";
    List.iter
      (fun { Obs.shard; samples; hits; ms } ->
        Format.fprintf fmt "@,  %4d %8d samples %8d hits %10.3f ms" shard samples hits ms)
      s.shards
  end;
  if s.series <> [] then begin
    Format.fprintf fmt "@,series    :";
    List.iter
      (fun (name, points) -> Format.fprintf fmt "@,  %-22s %8d points" name points)
      s.series
  end;
  Format.fprintf fmt "@]"

let pp_report fmt r =
  Format.fprintf fmt "@[<v>semantics : %a@,method    : %a@,answer    : %.6f" pp_semantics
    r.semantics pp_method r.method_ r.probability;
  (match r.exact with
   | Some q -> Format.fprintf fmt "@,exact     : %s" (Q.to_string q)
   | None -> ());
  List.iter (fun (k, v) -> Format.fprintf fmt "@,%-10s: %s" k v) r.diagnostics;
  (match r.stats with
   | Some s -> Format.fprintf fmt "@,--- stats ---@,%a" pp_stats s
   | None -> ());
  Format.fprintf fmt "@]"

let method_slug = function
  | Exact -> "exact"
  | Exact_partitioned -> "exact-partitioned"
  | Exact_lumped -> "exact-lumped"
  | Sampling _ -> "sampling"
  | Time_average _ -> "time-average"

let semantics_slug = function
  | Inflationary -> "inflationary"
  | Noninflationary -> "noninflationary"

(* The documented "probdb.stats/2" schema (see README): always carries
   engine/steps/states/draws/elapsed_ms; phases/operators/shards hold
   whatever the run populated.  /2 added the [series] summary block (point
   counts per recorded series name; full points go to [--series-json]). *)
let json_of_stats s =
  let open Obs.Json in
  Obj
    [ ("engine", Str s.engine);
      ("steps", Int s.steps);
      ("states", Int s.states);
      ("draws", Int s.draws);
      ("elapsed_ms", Float s.elapsed_ms);
      ("phases", Obj (List.map (fun (name, ms) -> (name, Float ms)) s.phases));
      ( "operators",
        Obj
          (List.map
             (fun (name, ticks, ms) ->
               (name, Obj [ ("ticks", Int ticks); ("ms", Float ms) ]))
             s.operators) );
      ( "shards",
        List
          (List.map
             (fun { Obs.shard; samples; hits; ms } ->
               Obj
                 [ ("shard", Int shard);
                   ("samples", Int samples);
                   ("hits", Int hits);
                   ("ms", Float ms)
                 ])
             s.shards) );
      ("series", Obj (List.map (fun (name, points) -> (name, Int points)) s.series))
    ]

let json_of_report ~tool r =
  let open Obs.Json in
  let stats_fields =
    match r.stats with
    | Some s -> (match json_of_stats s with Obj fields -> fields | _ -> assert false)
    | None -> []
  in
  Obj
    ([ ("schema", Str "probdb.stats/2");
       ("tool", Str tool);
       ("semantics", Str (semantics_slug r.semantics));
       ("method", Str (method_slug r.method_));
       ("probability", Float r.probability);
       ("exact", match r.exact with Some q -> Str (Q.to_string q) | None -> Null)
     ]
    @ stats_fields
    @ [ ("diagnostics", Obj (List.map (fun (k, v) -> (k, Str v)) r.diagnostics)) ])
