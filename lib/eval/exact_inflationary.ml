module Q = Bigq.Q
module Dist = Prob.Dist
module Database = Relational.Database

module Db_tbl = Hashtbl.Make (struct
  type t = Database.t

  let equal = Database.equal
  let hash = Database.hash
end)

exception Diverged of string

type stats = {
  states_visited : int;
  fixpoints : int;
}

let eval_with_stats ?(guard = Guard.unlimited) query init =
  let forever = Lang.Inflationary.forever query in
  let event = Lang.Inflationary.event query in
  let delta_step = Lang.Forever.delta_stepper forever in
  let cache = Db_tbl.create 256 in
  let visited = ref 0 in
  let fixpoints = ref 0 in
  (* Growth telemetry, latched once per evaluation: the exact engine's
     "iteration" is the visit order of distinct states, and the recorded
     size is each visited database — the saturation curve of Lemma 4.2. *)
  let ser = Obs.Series.enabled () in
  (* Budget check latched like [ser]: charged per distinct visited state,
     [None] (no branch taken) for the default unlimited guard. *)
  let gtick = Guard.state_tick guard in
  (* The memo key is the state alone even on the semi-naive path: the
     [oldVals] relations in the state record every valuation used on any
     path to it, so the step's output distribution is a function of the
     state — the delta only prunes how it is computed. *)
  let rec value db delta =
    match Db_tbl.find_opt cache db with
    | Some v -> v
    | None ->
      incr visited;
      (match gtick with Some tick -> tick () | None -> ());
      if ser then
        Obs.Series.add "fixpoint.db_tuples" ~it:!visited
          (float_of_int (Database.total_tuples db));
      let v =
        match delta_step with
        | Some stepper ->
          (* Semi-naive: successors come paired with their deltas, which
             are inflationary by construction — no subsumption check. *)
          let next = stepper ~db ~delta in
          let is_fixpoint =
            match Dist.is_point next with
            | Some (db', _) -> Database.equal db db'
            | None -> false
          in
          if is_fixpoint then begin
            incr fixpoints;
            if Lang.Event.holds event db then Q.one else Q.zero
          end
          else begin
            let self = ref Q.zero in
            let strict = ref [] in
            List.iter
              (fun ((db', d'), p) ->
                if Database.equal db db' then self := Q.add !self p
                else begin
                  if ser then
                    Obs.Series.add "fixpoint.delta_tuples" ~it:!visited
                      (float_of_int (Database.total_tuples d'));
                  strict := (db', d', p) :: !strict
                end)
              (Dist.support next);
            (* Condition on eventually leaving the self-loop. *)
            let escape = Q.sub Q.one !self in
            Q.sum
              (List.map
                 (fun (db', d', p) -> Q.mul (Q.div p escape) (value db' (Some d')))
                 !strict)
          end
        | None ->
          let next = Lang.Forever.step forever db in
          let is_fixpoint =
            match Dist.is_point next with
            | Some db' -> Database.equal db db'
            | None -> false
          in
          if is_fixpoint then begin
            incr fixpoints;
            if Lang.Event.holds event db then Q.one else Q.zero
          end
          else begin
            let self = ref Q.zero in
            let strict = ref [] in
            List.iter
              (fun (db', p) ->
                if Database.equal db db' then self := Q.add !self p
                else begin
                  if not (Database.subsumes db' db) then
                    raise
                      (Diverged "successor state lost tuples: kernel is not inflationary");
                  if ser then
                    Obs.Series.add "fixpoint.delta_tuples" ~it:!visited
                      (float_of_int (Database.total_tuples db' - Database.total_tuples db));
                  strict := (db', p) :: !strict
                end)
              (Dist.support next);
            (* Condition on eventually leaving the self-loop. *)
            let escape = Q.sub Q.one !self in
            Q.sum (List.map (fun (db', p) -> Q.mul (Q.div p escape) (value db' None)) !strict)
          end
      in
      Db_tbl.replace cache db v;
      v
  in
  (* No per-call phase here: [eval_ctable] calls this once per world, and a
     phase entry costs two clock reads plus a mutex — the callers wrap one
     "evaluate" phase around the whole evaluation instead. *)
  let result = value init None in
  if Obs.enabled () then begin
    Obs.add (Obs.counter "engine.states") !visited;
    Obs.add (Obs.counter "engine.fixpoints") !fixpoints
  end;
  (result, { states_visited = !visited; fixpoints = !fixpoints })

let eval ?guard query init = fst (eval_with_stats ?guard query init)

(* Prop 4.4 verbatim: depth-first over the computation tree, keeping only
   the current path.  Self-loops are folded by the same geometric
   conditioning as the memoised engine.  Always steps naively — this is
   the reference implementation. *)
let eval_pspace query init =
  let forever = Lang.Inflationary.forever query in
  let event = Lang.Inflationary.event query in
  let rec value db =
    let next = Lang.Forever.step forever db in
    let is_fixpoint =
      match Dist.is_point next with
      | Some db' -> Database.equal db db'
      | None -> false
    in
    if is_fixpoint then if Lang.Event.holds event db then Q.one else Q.zero
    else begin
      let self = ref Q.zero in
      let strict = ref [] in
      List.iter
        (fun (db', p) ->
          if Database.equal db db' then self := Q.add !self p
          else begin
            if not (Database.subsumes db' db) then
              raise (Diverged "successor state lost tuples: kernel is not inflationary");
            strict := (db', p) :: !strict
          end)
        (Dist.support next);
      let escape = Q.sub Q.one !self in
      Q.sum (List.map (fun (db', p) -> Q.mul (Q.div p escape) (value db')) !strict)
    end
  in
  value init

let eval_worlds ?guard ?(prepare = Fun.id) query worlds =
  Q.sum
    (List.map (fun (db, p) -> Q.mul p (eval ?guard query (prepare db))) (Dist.support worlds))

let eval_ctable ?guard ?(plan = false) ?(seminaive = true) ~program ~event ctable =
  let worlds = Prob.Ctable.worlds ctable in
  match Dist.support worlds with
  | [] -> Q.zero
  | ((world0, _) :: _) as support ->
    (* The kernel, its physical plan and the semi-naive rule plans depend
       on the program and the relation schemas only, and all worlds of a
       pc-table share their schemas — so compile once, against the first
       world, and evaluate every world with the shared artefacts (each
       world keeps its own initial database). *)
    let shared_plan =
      if not plan then None
      else begin
        let kernel, init0 = Lang.Compile.inflationary_kernel program world0 in
        let schema_of = Lang.Compile.schema_of_database init0 in
        let fq = Lang.Forever.compile ~schema_of (Lang.Forever.make ~kernel ~event) in
        let fq =
          if seminaive then Lang.Seminaive.install (Lang.Seminaive.compile ~schema_of program) fq
          else fq
        in
        Some fq
      end
    in
    Q.sum
      (List.map
         (fun (world, p) ->
           let kernel, init = Lang.Compile.inflationary_kernel program world in
           let fq =
             match shared_plan with
             | Some fq -> fq
             | None -> Lang.Forever.make ~kernel ~event
           in
           let q = Lang.Inflationary.of_forever_unchecked fq in
           (* The guard's state budget spans the whole enumeration: worlds
              share one counter, so a blow-up anywhere in the weighted sum
              stops the run. *)
           Q.mul p (eval ?guard q init))
         support)
