(** Uniform front-end over the four engines, used by the CLI and examples:
    parse → compile under the chosen semantics → evaluate. *)

type semantics =
  | Inflationary
  | Noninflationary

(** How the exact inflationary engines step each fixpoint computation.
    [Semi_naive] (the default) threads per-step deltas through
    delta-compiled rule plans ({!Lang.Seminaive}); [Naive] re-evaluates
    every rule body against the whole state each step (the [--naive]
    ablation).  Answers, visited states and recorded state counts are
    identical — only the work per step differs.  Requires plan execution;
    interpreted runs always step naively. *)
type strategy =
  | Naive
  | Semi_naive

type method_ =
  | Exact  (** Prop 4.4 / Prop 5.4+Thm 5.5 *)
  | Exact_partitioned  (** §5.1 (non-inflationary only) *)
  | Exact_lumped  (** chain quotiented by event-respecting lumping (non-inflationary only) *)
  | Sampling of {
      eps : float;
      delta : float;
      burn_in : int;  (** walk length before sampling (non-inflationary) *)
    }  (** Thm 4.3 / Thm 5.6 *)
  | Time_average of {
      steps : int;  (** length of the counted window *)
      burn_in : int;  (** discarded prefix before counting *)
    }
      (** single-walk long-run average estimator (non-inflationary only):
          {!Sample_noninflationary.eval_time_average} *)

(** Structured run metrics, populated from {!Obs} when [run ~stats:true].
    [steps] counts kernel steps taken (sampling) or states expanded (exact
    chain exploration); [states] distinct states interned or memoised;
    [draws] repair-key RNG draws plus raw chain-walk draws; [operators]
    per-plan-operator (name, ticks, ms); [shards] the {!Pool} shard table
    (parallel sampling only); [series] point counts per recorded
    {!Obs.Series} name (non-empty only when series recording was on). *)
type stats = {
  engine : string;  (** e.g. ["exact-noninflationary"], ["sample-inflationary"] *)
  steps : int;
  states : int;
  draws : int;
  elapsed_ms : float;
  phases : (string * float) list;  (** per-phase ms: compile/sample/explore/solve/evaluate *)
  operators : (string * int * float) list;
  shards : Obs.shard list;
  series : (string * int) list;
}

(** How far the run got.  [Complete] is the full answer with its usual
    guarantee (exact rational, or Thm 4.3 / Thm 5.6 (ε,δ) certificate).
    [Partial] is a budget- or interrupt-truncated run: for sampling methods
    the best estimate so far, with [completed]/[requested] sample counts and
    a Wilson 95% interval; for exact methods the answer is [nan] and
    [completed]/[requested] count chain states explored vs the state
    budget. *)
type outcome =
  | Complete
  | Partial of {
      reason : Guard.reason;
      completed : int;
      requested : int;
      ci : (float * float) option;  (** Wilson 95% interval (sampling only) *)
    }

(** A recorded graceful degradation: an exact run blew its state budget and
    was re-run with the sampler ([--on-budget fallback]). *)
type downgrade = {
  from_ : string;  (** method slug of the exact engine that exceeded budget *)
  to_ : string;  (** always ["sampling"] *)
  trigger : string;  (** {!Guard.reason_slug} of the exhausted budget *)
}

(** What to do when a {!Guard} budget runs out mid-evaluation.  [Fail]
    raises {!Engine_error}; [Degrade] (the default) returns a [Partial]
    report; [Fallback] additionally re-runs exact methods that exceeded the
    {e state} budget under the sampler with the given (ε,δ) parameters,
    recording the switch in [report.downgrade].  Budgets a sampler cannot
    outrun (deadline, sample budget, interrupt) degrade even under
    [Fallback]. *)
type budget_policy =
  | Fail
  | Degrade
  | Fallback of {
      eps : float;
      delta : float;
      burn_in : int;
    }

type report = {
  probability : float;  (** the query answer (float view); [nan] on exact Partial *)
  exact : Bigq.Q.t option;  (** exact value when the method is exact *)
  semantics : semantics;
  method_ : method_;
  stats : stats option;  (** [Some] iff [run ~stats:true] *)
  diagnostics : (string * string) list;  (** human-readable key/value pairs *)
  outcome : outcome;
  downgrade : downgrade option;  (** [Some] iff a fallback fired *)
}

exception Engine_error of string

(** A compiled request: parse/rewrite/compile work done once, runtime
    inputs (seed, budgets, domains, policy) supplied per {!execute}.  A
    prepared program holds only immutable compiled artifacts (physical
    plans are safe to execute concurrently from several domains), so one
    value can be cached and shared across concurrent executions — this is
    what the server's plan cache stores.  Branches whose compilation
    consumes RNG draws (pc-table sampling probes a world for schemas)
    defer compilation into {!execute} so fixed-seed estimates stay
    draw-identical to {!run}'s. *)
type prepared

val prepare :
  ?optimize:bool ->
  ?plan:bool ->
  ?strategy:strategy ->
  ?magic:bool ->
  semantics:semantics ->
  method_:method_ ->
  Lang.Parser.parsed ->
  prepared
(** Compile-time half of {!run}: same defaults and diagnostics.  Raises
    {!Engine_error} when the input lacks a [?-] event or the method does
    not apply to the semantics.  Phases ("rewrite"/"compile") are recorded
    into the current {!Obs} scope when stats are enabled there. *)

val execute :
  ?seed:int ->
  ?max_states:int ->
  ?max_steps:int ->
  ?domains:int ->
  ?guard:Guard.t ->
  ?on_budget:budget_policy ->
  ?ckpt:Pool.ckpt ->
  ?stats:bool ->
  prepared ->
  report
(** Runtime half of {!run}, with the same defaults and error boundary.
    Unlike {!run} it does NOT reset or toggle {!Obs}: the caller owns the
    current scope (a server enables stats in a per-request scope around
    this call).  With [stats], [report.stats] is assembled from the
    current scope, timed from this call — a cache-hitting caller pays no
    compile time and reports none. *)

val run :
  ?seed:int ->
  ?max_states:int ->
  ?max_steps:int ->
  ?optimize:bool ->
  ?plan:bool ->
  ?strategy:strategy ->
  ?magic:bool ->
  ?domains:int ->
  ?guard:Guard.t ->
  ?on_budget:budget_policy ->
  ?ckpt:Pool.ckpt ->
  ?stats:bool ->
  ?trace:bool ->
  ?series:bool ->
  semantics:semantics ->
  method_:method_ ->
  Lang.Parser.parsed ->
  report
(** [optimize] (default false) runs {!Prob.Optimize.interp} on the compiled
    kernel before evaluation.  [plan] (default true) compiles the kernel to
    physical plans ({!Prob.Pplan}) built once per program and executed every
    step; [~plan:false] keeps the AST interpreter (the ablation baseline).
    Either way the answers are identical: exact methods return the same
    rationals, sampling methods the same fixed-seed estimates.  [domains]
    routes sampling methods through the Domain-parallel evaluators
    ({!Pool}): estimates are then reproducible for a fixed [seed] whatever
    the value of [domains] (including 1), but drawn from different RNG
    streams than the default sequential samplers, which remain the [None]
    behaviour for seed compatibility.

    [strategy] (default [Semi_naive]) selects the fixpoint stepper for the
    exact inflationary engines — see {!strategy}; the effective choice is
    recorded in the report's diagnostics under ["plan strategy"].  [magic]
    (default false) applies the {!Lang.Magic} demand rewrite to the
    program and event before compilation (inflationary semantics only;
    ignored with a diagnostic otherwise): the answer is unchanged while
    irrelevant derivations — and with them visited states — are pruned.

    [max_steps] bounds the inflationary
    sampler's walk to the fixpoint (default 100000 inside
    {!Sample_inflationary}).  [stats] (default false) resets and enables
    {!Obs} for the duration of the run and fills [report.stats]; off, the
    evaluators execute their uninstrumented closures.  [trace] and [series]
    (defaults false; [trace] implies [series]) likewise reset and enable
    {!Obs.Trace}/{!Obs.Series} for the run — unless the caller already
    enabled them, in which case they are left untouched so recording
    accumulates across several [run]s (the multi-event CLI path).  The
    recorded buffers survive the run; flush with {!Obs.Trace.write} /
    {!Obs.Series.json}.

    [guard] (default {!Guard.unlimited}) bounds the run: deadline, state
    budget and sample budget are checked cooperatively at hot-loop
    boundaries, and {!Guard.request_interrupt} stops it from a signal
    handler.  [on_budget] (default [Degrade]) picks the reaction — see
    {!budget_policy}; [report.outcome] says whether the answer is complete.
    [ckpt] routes sampling methods through the sharded pool (forcing
    [domains = 1] when unset) with periodic checkpointing and/or a resume
    snapshot ({!Pool.run_samples}): a resumed run's estimate is
    bit-identical to an uninterrupted one with the same seed and domain
    count.  Fault injection is read from the [PROBDB_FAULT] environment
    variable inside {!Pool}.

    Raises {!Engine_error} when the parsed input lacks a [?-] event, the
    method does not apply (e.g. partitioned inflationary), a budget runs
    out under [on_budget = Fail], a checkpoint file is invalid, or a
    sampler diverges — {!Sample_inflationary.Did_not_converge} and
    {!Pool.Worker_error} are caught here and converted into an
    [Engine_error] naming the shard and samples completed (and listing any
    other shards that failed in the same run). *)

val pp_report : Format.formatter -> report -> unit

val pp_stats : Format.formatter -> stats -> unit

val json_of_stats : stats -> Obs.Json.t

val json_of_report : tool:string -> report -> Obs.Json.t
(** The machine-readable ["probdb.stats/3"] document emitted by
    [--stats-json]: always [schema]/[tool]/[semantics]/[method]/
    [probability]/[exact]/[outcome]/[downgrade]/[diagnostics]; plus
    [engine]/[steps]/[states]/[draws]/[elapsed_ms]/[phases]/[operators]/
    [shards]/[series] when [report.stats] is populated.  [outcome] is
    [{"status":"complete"}] or [{"status":"partial", "reason", "detail",
    "completed", "requested"(, "ci_low", "ci_high")}]; [downgrade] is
    [null] or [{"from", "to", "trigger"}].  /2 added [series]; /3 added
    [outcome] and [downgrade]. *)
