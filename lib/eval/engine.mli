(** Uniform front-end over the four engines, used by the CLI and examples:
    parse → compile under the chosen semantics → evaluate. *)

type semantics =
  | Inflationary
  | Noninflationary

type method_ =
  | Exact  (** Prop 4.4 / Prop 5.4+Thm 5.5 *)
  | Exact_partitioned  (** §5.1 (non-inflationary only) *)
  | Exact_lumped  (** chain quotiented by event-respecting lumping (non-inflationary only) *)
  | Sampling of {
      eps : float;
      delta : float;
      burn_in : int;  (** walk length before sampling (non-inflationary) *)
    }  (** Thm 4.3 / Thm 5.6 *)

type report = {
  probability : float;  (** the query answer (float view) *)
  exact : Bigq.Q.t option;  (** exact value when the method is exact *)
  semantics : semantics;
  method_ : method_;
  diagnostics : (string * string) list;  (** human-readable key/value pairs *)
}

exception Engine_error of string

val run :
  ?seed:int ->
  ?max_states:int ->
  ?optimize:bool ->
  ?plan:bool ->
  ?domains:int ->
  semantics:semantics ->
  method_:method_ ->
  Lang.Parser.parsed ->
  report
(** [optimize] (default false) runs {!Prob.Optimize.interp} on the compiled
    kernel before evaluation.  [plan] (default true) compiles the kernel to
    physical plans ({!Prob.Pplan}) built once per program and executed every
    step; [~plan:false] keeps the AST interpreter (the ablation baseline).
    Either way the answers are identical: exact methods return the same
    rationals, sampling methods the same fixed-seed estimates.  [domains]
    routes sampling methods through the Domain-parallel evaluators
    ({!Pool}): estimates are then reproducible for a fixed [seed] whatever
    the value of [domains] (including 1), but drawn from different RNG
    streams than the default sequential samplers, which remain the [None]
    behaviour for seed compatibility.  Raises {!Engine_error} when the
    parsed input lacks a [?-] event or the method does not apply (e.g.
    partitioned inflationary). *)

val pp_report : Format.formatter -> report -> unit
