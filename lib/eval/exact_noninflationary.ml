module Q = Bigq.Q
module Database = Relational.Database
module Chain = Markov.Chain
module Scc = Markov.Scc

type analysis = {
  chain : Database.t Chain.t;
  num_states : int;
  irreducible : bool;
  ergodic : bool;
  result : Q.t;
}

let build_chain_step ?(max_states = 100_000) ?guard step init =
  Chain.of_step ~hash:Database.hash ~equal:Database.equal ~max_states ?guard ~init:[ init ]
    ~step ()

let build_chain ?max_states ?guard query init =
  build_chain_step ?max_states ?guard (fun db -> Lang.Forever.step query db) init

(* Long-run average occupation mass of event states, starting at [start]. *)
let event_mass_event event chain ~start =
  let event_at i = Lang.Event.holds event (Chain.label chain i) in
  let scc = Scc.of_chain chain in
  if Scc.num_components scc = 1 then begin
    (* Irreducible: stationary distribution exists and equals the time
       average (Proposition 5.4). *)
    let pi = Markov.Stationary.exact chain in
    let acc = ref Q.zero in
    Array.iteri (fun i p -> if event_at i then acc := Q.add !acc p) pi;
    !acc
  end
  else begin
    (* Theorem 5.5: absorb into closed components, weight each component's
       internal stationary distribution by its absorption probability.
       Transient states have zero long-run occupation. *)
    let absorb = Markov.Absorption.into_closed chain ~start in
    Q.sum
      (List.map
         (fun (component, p_absorb) ->
           if Q.is_zero p_absorb then Q.zero
           else begin
             let members = scc.Scc.members.(component) in
             let pi = Markov.Stationary.exact_on_component chain members in
             let mass =
               Q.sum (List.filter_map (fun (s, p) -> if event_at s then Some p else None) pi)
             in
             Q.mul p_absorb mass
           end)
         absorb)
  end

let event_mass query chain ~start = event_mass_event query.Lang.Forever.event chain ~start

let analyse ?max_states ?guard query init =
  let chain = Obs.phase "explore" (fun () -> build_chain ?max_states ?guard query init) in
  let start =
    match Chain.index chain init with
    | Some i -> i
    | None -> 0
  in
  let result = Obs.phase "solve" (fun () -> event_mass query chain ~start) in
  {
    chain;
    num_states = Chain.num_states chain;
    irreducible = Markov.Classify.is_irreducible chain;
    ergodic = Markov.Classify.is_ergodic chain;
    result;
  }

let eval ?max_states ?guard query init = (analyse ?max_states ?guard query init).result

type lumped_analysis = {
  lumped_result : Q.t;
  states_before : int;  (** chain states before lumping *)
  states_after : int;  (** lumped classes ([= states_before] when not lumped) *)
  lumped : bool;  (** whether the event-respecting quotient was solved *)
}

let analyse_lumped ?max_states ?guard query init =
  let chain = Obs.phase "explore" (fun () -> build_chain ?max_states ?guard query init) in
  let states_before = Chain.num_states chain in
  let scc = Scc.of_chain chain in
  if Scc.num_components scc = 1 then begin
    (* Irreducible: solve on the event-respecting quotient
       ([Markov.Lumping.stationary_event_mass] inlined to expose the class
       count). *)
    Obs.phase "solve" @@ fun () ->
    let event_at i = Lang.Event.holds query.Lang.Forever.event (Chain.label chain i) in
    let lumping = Markov.Lumping.lump ~initial:(fun s -> if event_at s then 1 else 0) chain in
    let pi = Markov.Stationary.exact lumping.Markov.Lumping.quotient in
    let event_class = Array.make lumping.Markov.Lumping.num_classes false in
    for s = 0 to states_before - 1 do
      if event_at s then event_class.(lumping.Markov.Lumping.class_of.(s)) <- true
    done;
    let acc = ref Q.zero in
    Array.iteri (fun c p -> if event_class.(c) then acc := Q.add !acc p) pi;
    {
      lumped_result = !acc;
      states_before;
      states_after = lumping.Markov.Lumping.num_classes;
      lumped = true;
    }
  end
  else begin
    let start = match Chain.index chain init with Some i -> i | None -> 0 in
    {
      lumped_result = Obs.phase "solve" (fun () -> event_mass query chain ~start);
      states_before;
      states_after = states_before;
      lumped = false;
    }
  end

let eval_lumped ?max_states ?guard query init =
  (analyse_lumped ?max_states ?guard query init).lumped_result

let expected_hitting_time ?max_states query init =
  let chain = build_chain ?max_states query init in
  let event_at i = Lang.Event.holds query.Lang.Forever.event (Chain.label chain i) in
  let targets =
    List.filter event_at (List.init (Chain.num_states chain) Fun.id)
  in
  if targets = [] then None
  else begin
    let h = Markov.Hitting.expected_steps chain ~targets in
    let start = match Chain.index chain init with Some i -> i | None -> 0 in
    h.(start)
  end

let eval_events ?max_states ?guard ?(plan = false) ~kernel ~events init =
  let step =
    if plan then
      Prob.Pplan.apply
        (Prob.Pplan.compile_interp ~schema_of:(Lang.Compile.schema_of_database init) kernel)
    else Prob.Interp.apply kernel
  in
  let chain = build_chain_step ?max_states ?guard step init in
  let start = match Chain.index chain init with Some i -> i | None -> 0 in
  let scc = Scc.of_chain chain in
  if Scc.num_components scc = 1 then begin
    let pi = Markov.Stationary.exact chain in
    List.map
      (fun event ->
        let acc = ref Q.zero in
        Array.iteri
          (fun i p -> if Lang.Event.holds event (Chain.label chain i) then acc := Q.add !acc p)
          pi;
        (event, !acc))
      events
  end
  else begin
    (* Absorption probabilities and per-leaf stationaries are shared; only
       the event test differs. *)
    let absorb = Markov.Absorption.into_closed chain ~start in
    let leaf_pis =
      List.map
        (fun (component, p_absorb) ->
          let pi =
            if Q.is_zero p_absorb then []
            else Markov.Stationary.exact_on_component chain scc.Scc.members.(component)
          in
          (p_absorb, pi))
        absorb
    in
    List.map
      (fun event ->
        let total =
          Q.sum
            (List.map
               (fun (p_absorb, pi) ->
                 if Q.is_zero p_absorb then Q.zero
                 else
                   Q.mul p_absorb
                     (Q.sum
                        (List.filter_map
                           (fun (s, p) ->
                             if Lang.Event.holds event (Chain.label chain s) then Some p else None)
                           pi)))
               leaf_pis)
        in
        (event, total))
      events
  end

let eval_kernel ?max_states ~kernel ~event init =
  let chain = build_chain_step ?max_states (Lang.Kernel.apply kernel) init in
  let start = match Chain.index chain init with Some i -> i | None -> 0 in
  event_mass_event event chain ~start

let eval_worlds ?max_states ?(prepare = Fun.id) query worlds =
  Q.sum
    (List.map
       (fun (db, p) -> Q.mul p (eval ?max_states query (prepare db)))
       (Prob.Dist.support worlds))
