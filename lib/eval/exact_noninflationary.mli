(** Exact evaluation of non-inflationary (forever) queries.

    The transition kernel and the input database induce a Markov chain over
    database instances (Section 3.1).  When that chain is irreducible the
    query result is the stationary mass of the event states, computed by
    Gaussian elimination (Proposition 5.4).  In general, the walk is
    absorbed with probability 1 into a closed SCC of the condensation DAG;
    the answer combines the absorption probabilities with each closed
    component's internal stationary distribution (Theorem 5.5). *)

type analysis = {
  chain : Relational.Database.t Markov.Chain.t;
  num_states : int;
  irreducible : bool;
  ergodic : bool;
  result : Bigq.Q.t;
}

val build_chain :
  ?max_states:int ->
  ?guard:Guard.t ->
  Lang.Forever.t ->
  Relational.Database.t ->
  Relational.Database.t Markov.Chain.t
(** The chain of database instances reachable from the input (default state
    cap 100000 guards against blow-up; {!Markov.Chain.Chain_error} past
    it).  [guard] bounds exploration {e recoverably}: past its state budget
    or deadline the build raises {!Guard.Exhausted} for the engine to turn
    into a partial result or a sampling fallback. *)

val eval :
  ?max_states:int -> ?guard:Guard.t -> Lang.Forever.t -> Relational.Database.t -> Bigq.Q.t
(** The query result: long-run average probability that the event holds. *)

val analyse :
  ?max_states:int -> ?guard:Guard.t -> Lang.Forever.t -> Relational.Database.t -> analysis
(** {!eval} plus the structural diagnostics. *)

val eval_lumped :
  ?max_states:int -> ?guard:Guard.t -> Lang.Forever.t -> Relational.Database.t -> Bigq.Q.t
(** Like {!eval} but, on irreducible chains, quotients the database-state
    chain by event-respecting lumping ({!Markov.Lumping}) before the linear
    solve — often collapsing the state space by orders of magnitude.  Falls
    back to the direct algorithm on reducible chains. *)

type lumped_analysis = {
  lumped_result : Bigq.Q.t;
  states_before : int;  (** chain states before lumping *)
  states_after : int;  (** lumped classes ([= states_before] when not lumped) *)
  lumped : bool;  (** whether the event-respecting quotient was solved *)
}

val analyse_lumped :
  ?max_states:int -> ?guard:Guard.t -> Lang.Forever.t -> Relational.Database.t -> lumped_analysis
(** {!eval_lumped} plus the before/after-lumping state counts for
    diagnostics. *)

val expected_hitting_time :
  ?max_states:int -> Lang.Forever.t -> Relational.Database.t -> Bigq.Q.t option
(** Expected number of steps until the event first holds, starting from the
    input state, exactly ({!Markov.Hitting}).  [Some 0] if it already
    holds; [None] when the event is reached with probability < 1. *)

val eval_events :
  ?max_states:int ->
  ?guard:Guard.t ->
  ?plan:bool ->
  kernel:Prob.Interp.t ->
  events:Lang.Event.t list ->
  Relational.Database.t ->
  (Lang.Event.t * Bigq.Q.t) list
(** Evaluate several query events over the SAME kernel and input — the
    chain is built and decomposed once; only the final mass summation is
    per-event.  E.g. the full stationary distribution of a walk in one
    pass.  [plan] (default [false]) steps via compiled physical plans
    ({!Prob.Pplan}) built against the initial database's schemas; the
    results are identical. *)

val eval_kernel :
  ?max_states:int -> kernel:Lang.Kernel.t -> event:Lang.Event.t -> Relational.Database.t -> Bigq.Q.t
(** {!eval} for an arbitrary (possibly composite) transition kernel built
    with {!Lang.Kernel} combinators. *)

val eval_worlds :
  ?max_states:int ->
  ?prepare:(Relational.Database.t -> Relational.Database.t) ->
  Lang.Forever.t ->
  Relational.Database.t Prob.Dist.t ->
  Bigq.Q.t
(** Weighted average over initial worlds of a probabilistic database. *)
