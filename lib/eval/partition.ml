module Q = Bigq.Q
module Database = Relational.Database
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Value = Relational.Value
module Int_set = Set.Make (Int)

(* --- Union-find over base tuple ids ----------------------------------- *)

type uf = { parent : int array }

let uf_create n = { parent = Array.init n Fun.id }

let rec uf_find uf i =
  if uf.parent.(i) = i then i
  else begin
    let r = uf_find uf uf.parent.(i) in
    uf.parent.(i) <- r;
    r
  end

let uf_union uf i j =
  let ri = uf_find uf i and rj = uf_find uf j in
  if ri <> rj then uf.parent.(ri) <- rj

(* --- Fact store with provenance --------------------------------------- *)

module Tuple_map = Map.Make (Tuple)

type store = (string, Int_set.t Tuple_map.t ref) Hashtbl.t

let store_find (store : store) pred =
  match Hashtbl.find_opt store pred with
  | Some m -> m
  | None ->
    let m = ref Tuple_map.empty in
    Hashtbl.replace store pred m;
    m

(* Add a fact; returns true if the tuple is new or its provenance grew. *)
let store_add store pred tuple prov =
  let m = store_find store pred in
  match Tuple_map.find_opt tuple !m with
  | None ->
    m := Tuple_map.add tuple prov !m;
    true
  | Some old ->
    let merged = Int_set.union old prov in
    if Int_set.equal merged old then false
    else begin
      m := Tuple_map.add tuple merged !m;
      true
    end

(* --- Rule matching ----------------------------------------------------- *)

(* Ground valuations of a body against the store: environments are
   association lists variable -> value; provenance accumulates. *)
let valuations store body =
  let match_atom env prov (a : Lang.Datalog.atom) =
    let facts = !(store_find store a.Lang.Datalog.pred) in
    Tuple_map.fold
      (fun tuple fact_prov acc ->
        if Array.length tuple <> List.length a.Lang.Datalog.args then acc
        else begin
          let rec unify env i = function
            | [] -> Some env
            | arg :: rest -> (
              let v = tuple.(i) in
              match arg with
              | Lang.Datalog.Const c -> if Value.equal c v then unify env (i + 1) rest else None
              | Lang.Datalog.Var x -> (
                match List.assoc_opt x env with
                | Some bound -> if Value.equal bound v then unify env (i + 1) rest else None
                | None -> unify ((x, v) :: env) (i + 1) rest))
          in
          match unify env 0 a.Lang.Datalog.args with
          | Some env' -> (env', Int_set.union prov fact_prov) :: acc
          | None -> acc
        end)
      facts []
  in
  List.fold_left
    (fun partial atom ->
      List.concat_map (fun (env, prov) -> match_atom env prov atom) partial)
    [ ([], Int_set.empty) ]
    body

(* Evaluate a rule's comparison guards under an environment. *)
let constraints_hold env (r : Lang.Datalog.rule) =
  let value = function
    | Lang.Datalog.Const c -> c
    | Lang.Datalog.Var x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg "unsafe constraint slipped past validation")
  in
  List.for_all
    (fun (c : Lang.Datalog.constraint_) ->
      let d = Value.compare (value c.Lang.Datalog.lhs) (value c.Lang.Datalog.rhs) in
      match c.Lang.Datalog.cmp with
      | Lang.Datalog.Eq -> d = 0
      | Lang.Datalog.Ne -> d <> 0
      | Lang.Datalog.Lt -> d < 0
      | Lang.Datalog.Le -> d <= 0
      | Lang.Datalog.Gt -> d > 0
      | Lang.Datalog.Ge -> d >= 0)
    r.Lang.Datalog.constraints

let ground_head env (head : Lang.Datalog.head) =
  Tuple.of_list
    (List.map
       (fun (ha : Lang.Datalog.head_arg) ->
         match ha.Lang.Datalog.term with
         | Lang.Datalog.Const c -> c
         | Lang.Datalog.Var x -> (
           match List.assoc_opt x env with
           | Some v -> v
           | None -> invalid_arg "unsafe rule slipped past validation"))
       head.Lang.Datalog.hargs)

(* --- Saturation -------------------------------------------------------- *)

let base_tuples db =
  List.concat_map
    (fun (name, r) -> List.rev (Relation.fold (fun t acc -> (name, t) :: acc) r []))
    (Database.bindings db)

let saturate_internal program db =
  let base = base_tuples db in
  let store : store = Hashtbl.create 16 in
  List.iteri
    (fun i (name, t) -> ignore (store_add store name t (Int_set.singleton i)))
    base;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Lang.Datalog.rule) ->
        let vs = valuations store r.Lang.Datalog.body in
        List.iter
          (fun (env, prov) ->
            if constraints_hold env r then begin
              let tuple = ground_head env r.Lang.Datalog.head in
              if store_add store r.Lang.Datalog.head.Lang.Datalog.hpred tuple prov then
                changed := true
            end)
          vs)
      program
  done;
  (base, store)

let saturate program db =
  let _, store = saturate_internal program db in
  Hashtbl.fold
    (fun pred m acc ->
      Tuple_map.fold (fun t prov acc -> (pred, t, Int_set.elements prov) :: acc) !m acc)
    store []

let has_negation program =
  List.exists (fun (r : Lang.Datalog.rule) -> r.Lang.Datalog.neg <> []) program

let classes program db =
  (* Negation makes derivability non-monotone, so the provenance
     saturation no longer over-approximates interaction; fall back to a
     single class (no partitioning). *)
  if has_negation program then [ base_tuples db ]
  else begin
  let base, store = saturate_internal program db in
  let n = List.length base in
  let uf = uf_create n in
  (* All base ids co-occurring in some fact's provenance interact. *)
  Hashtbl.iter
    (fun _ m ->
      Tuple_map.iter
        (fun _ prov ->
          match Int_set.elements prov with
          | [] -> ()
          | first :: rest -> List.iter (uf_union uf first) rest)
        !m)
    store;
  let groups = Hashtbl.create 16 in
  List.iteri
    (fun i bt ->
      let root = uf_find uf i in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups root) in
      Hashtbl.replace groups root (bt :: prev))
    base;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) groups []
  end

let restrict db keep =
  Database.map
    (fun name r ->
      Relation.filter (fun t -> List.exists (fun (n, t') -> String.equal n name && Tuple.equal t t') keep) r)
    db

let eval_noninflationary ?max_states program db event =
  let parts = classes program db in
  let p_none =
    List.fold_left
      (fun acc part ->
        let sub = restrict db part in
        let kernel, init = Lang.Compile.noninflationary_kernel program sub in
        let query = Lang.Forever.make ~kernel ~event in
        let p = Exact_noninflationary.eval ?max_states query init in
        Q.mul acc (Q.sub Q.one p))
      Q.one parts
  in
  Q.sub Q.one p_none
