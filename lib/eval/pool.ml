(* A small worker pool over OCaml 5 domains for embarrassingly parallel
   sampling work.

   Tasks are indexed closures pulled off a shared atomic counter, so which
   domain runs which task is nondeterministic — but results land in their
   task's slot and every task closes over its own deterministic RNG stream,
   so the merged output is a pure function of the inputs, independent of
   [domains] and of scheduling. *)

let available () = Domain.recommended_domain_count ()

(* A failure inside a shard, tagged with which shard and how many of its
   samples had completed — so a diverging sampler can be reported as "shard
   7 diverged after 113 samples" instead of a bare exception escaping from
   some anonymous domain. *)
exception Worker_error of { shard : int; completed : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { shard; completed; exn } ->
      Some
        (Printf.sprintf "Pool.Worker_error (shard %d, %d samples completed): %s" shard completed
           (Printexc.to_string exn))
    | _ -> None)

let split_rngs rng n =
  (* [Random.State.split] is deterministic given the parent state, so a
     fixed seed yields the same [n] child streams on every run. *)
  let a = Array.make n rng in
  for i = 0 to n - 1 do
    a.(i) <- Random.State.split rng
  done;
  a

let map_tasks ~domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.map (fun f -> f ()) tasks
    else begin
      let results : ('a, exn) result option array = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e);
            loop ()
          end
        in
        loop ()
      in
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end
  end

let shard_sizes ~shards total =
  let base = total / shards and extra = total mod shards in
  Array.init shards (fun s -> base + if s < extra then 1 else 0)

(* Shard count depends only on the workload size, never on [domains]: the
   per-shard RNG streams and counts are then identical whatever the domain
   count, which is what makes estimates reproducible across [domains]=1 and
   [domains]=k.  32 shards keep 4-8 domains load-balanced without splitting
   the RNG excessively. *)
let default_shards samples = if samples < 32 then samples else 32

(* Convergence cadence: record the running estimate every k-th completed
   sample, where k depends only on the shard's workload — so the recorded
   series, like the estimate itself, is identical at any domain count. *)
let series_stride todo = max 1 (todo / 8)

let count_hits ~domains ~samples rng (run : Random.State.t -> bool) =
  if samples <= 0 then invalid_arg "Pool.count_hits: samples must be positive";
  let shards = default_shards samples in
  let rngs = split_rngs rng shards in
  let sizes = shard_sizes ~shards samples in
  (* Stats/series/tracing are latched once at task-creation time, and each
     task picks its whole loop body here: per-sample cost with everything
     off is exactly the [run rng] call plus two int increments — the same
     closures as before the telemetry existed. *)
  let obs = Obs.enabled () in
  let ser = Obs.Series.enabled () in
  let trc = Obs.Trace.enabled () in
  let tasks =
    Array.init shards (fun s ->
        let rng = rngs.(s) and todo = sizes.(s) in
        let k = series_stride todo in
        fun () ->
          (* Series points and trace events from shared closures below this
             frame (kernel steps, samplers) attribute to this shard. *)
          if ser || trc then Obs.set_tid s;
          let t0 = if obs || trc then Obs.now_ns () else 0 in
          let hits = ref 0 and completed = ref 0 in
          (try
             if ser then
               while !completed < todo do
                 if run rng then incr hits;
                 incr completed;
                 if !completed mod k = 0 then begin
                   let h = !hits and c = !completed in
                   let lo, hi = Obs.wilson_interval ~hits:h ~total:c in
                   Obs.Series.add "sampler.estimate" ~shard:s ~it:c
                     (float_of_int h /. float_of_int c);
                   Obs.Series.add "sampler.ci_low" ~shard:s ~it:c lo;
                   Obs.Series.add "sampler.ci_high" ~shard:s ~it:c hi
                 end
               done
             else
               while !completed < todo do
                 if run rng then incr hits;
                 incr completed
               done
           with e -> raise (Worker_error { shard = s; completed = !completed; exn = e }));
          if trc then
            Obs.Trace.complete ~tid:s ~t0 ~dur:(Obs.now_ns () - t0)
              ~args:[ ("samples", todo); ("hits", !hits) ]
              "pool.shard";
          if obs then
            Obs.record_shard
              {
                Obs.shard = s;
                samples = todo;
                hits = !hits;
                ms = Obs.ms_of_ns (Obs.now_ns () - t0);
              };
          !hits)
  in
  let total = Array.fold_left ( + ) 0 (map_tasks ~domains tasks) in
  (* The calling domain ran tasks too; restore its default shard stamp. *)
  if ser || trc then Obs.set_tid 0;
  total
