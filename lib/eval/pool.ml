(* A small worker pool over OCaml 5 domains for embarrassingly parallel
   sampling work.

   Tasks are indexed closures pulled off a shared atomic counter, so which
   domain runs which task is nondeterministic — but results land in their
   task's slot and every task closes over its own deterministic RNG stream,
   so the merged output is a pure function of the inputs, independent of
   [domains] and of scheduling. *)

let available () = Domain.recommended_domain_count ()

(* A failure inside a shard, tagged with which shard and how many of its
   samples had completed — so a diverging sampler can be reported as "shard
   7 diverged after 113 samples" instead of a bare exception escaping from
   some anonymous domain. *)
exception Worker_error of { shard : int; completed : int; exn : exn }

let () =
  Printexc.register_printer (function
    | Worker_error { shard; completed; exn } ->
      Some
        (Printf.sprintf "Pool.Worker_error (shard %d, %d samples completed): %s" shard completed
           (Printexc.to_string exn))
    | _ -> None)

let split_rngs rng n =
  (* [Random.State.split] is deterministic given the parent state, so a
     fixed seed yields the same [n] child streams on every run. *)
  let a = Array.make n rng in
  for i = 0 to n - 1 do
    a.(i) <- Random.State.split rng
  done;
  a

let map_tasks ~domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.map (fun f -> f ()) tasks
    else begin
      let results : ('a, exn) result option array = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e);
            loop ()
          end
        in
        loop ()
      in
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end
  end

let shard_sizes ~shards total =
  let base = total / shards and extra = total mod shards in
  Array.init shards (fun s -> base + if s < extra then 1 else 0)

(* Shard count depends only on the workload size, never on [domains]: the
   per-shard RNG streams and counts are then identical whatever the domain
   count, which is what makes estimates reproducible across [domains]=1 and
   [domains]=k.  32 shards keep 4-8 domains load-balanced without splitting
   the RNG excessively. *)
let default_shards samples = if samples < 32 then samples else 32

let count_hits ~domains ~samples rng (run : Random.State.t -> bool) =
  if samples <= 0 then invalid_arg "Pool.count_hits: samples must be positive";
  let shards = default_shards samples in
  let rngs = split_rngs rng shards in
  let sizes = shard_sizes ~shards samples in
  (* Stats are latched once at task-creation time; per-sample cost with
     stats off is exactly the [run rng] call plus two int increments. *)
  let obs = Obs.enabled () in
  let tasks =
    Array.init shards (fun s ->
        let rng = rngs.(s) and todo = sizes.(s) in
        fun () ->
          let t0 = if obs then Obs.now_ns () else 0 in
          let hits = ref 0 and completed = ref 0 in
          (try
             while !completed < todo do
               if run rng then incr hits;
               incr completed
             done
           with e -> raise (Worker_error { shard = s; completed = !completed; exn = e }));
          if obs then
            Obs.record_shard
              {
                Obs.shard = s;
                samples = todo;
                hits = !hits;
                ms = Obs.ms_of_ns (Obs.now_ns () - t0);
              };
          !hits)
  in
  Array.fold_left ( + ) 0 (map_tasks ~domains tasks)
