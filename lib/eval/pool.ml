(* A small worker pool over OCaml 5 domains for embarrassingly parallel
   sampling work.

   Tasks are indexed closures pulled off a shared atomic counter, so which
   domain runs which task is nondeterministic — but results land in their
   task's slot and every task closes over its own deterministic RNG stream,
   so the merged output is a pure function of the inputs, independent of
   [domains] and of scheduling. *)

let available () = Domain.recommended_domain_count ()

type failure = {
  shard : int;
  completed : int;
  exn : exn;
  backtrace : Printexc.raw_backtrace;
}

(* A failure inside a shard, tagged with which shard and how many of its
   samples had completed — so a diverging sampler can be reported as "shard
   7 diverged after 113 samples" instead of a bare exception escaping from
   some anonymous domain.  Every shard runs to its own conclusion before
   the error is raised, so [failures] lists all failed shards (ascending;
   the carried [shard]/[completed]/[exn] are the first of them) and the
   raise preserves the first failure's original backtrace. *)
exception
  Worker_error of { shard : int; completed : int; exn : exn; failures : failure list }

let () =
  Printexc.register_printer (function
    | Worker_error { shard; completed; exn; failures } ->
      let rest = List.filter (fun f -> f.shard <> shard) failures in
      let extra =
        if rest = [] then ""
        else
          Printf.sprintf " (+%d more failed shards: %s)" (List.length rest)
            (String.concat "," (List.map (fun f -> string_of_int f.shard) rest))
      in
      Some
        (Printf.sprintf "Pool.Worker_error (shard %d, %d samples completed): %s%s" shard
           completed (Printexc.to_string exn) extra)
    | _ -> None)

let raise_failures = function
  | [] -> ()
  | first :: _ as failures ->
    Printexc.raise_with_backtrace
      (Worker_error
         { shard = first.shard; completed = first.completed; exn = first.exn; failures })
      first.backtrace

let split_rngs rng n =
  (* [Random.State.split] is deterministic given the parent state, so a
     fixed seed yields the same [n] child streams on every run. *)
  let a = Array.make n rng in
  for i = 0 to n - 1 do
    a.(i) <- Random.State.split rng
  done;
  a

let map_tasks ~domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    if domains = 1 then Array.map (fun f -> f ()) tasks
    else begin
      let results : ('a, exn) result option array = Array.make n None in
      let next = Atomic.make 0 in
      (* Spawned domains start in the global [Obs] scope; enter the
         caller's so shard rows and counters land in the scope of the run
         that owns these tasks (a server request's, usually). *)
      let scope = Obs.Scope.current () in
      let worker () =
        Obs.Scope.run scope @@ fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            results.(i) <- Some (try Ok (tasks.(i) ()) with e -> Error e);
            loop ()
          end
        in
        loop ()
      in
      let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error e) -> raise e
          | None -> assert false)
        results
    end
  end

let shard_sizes ~shards total =
  let base = total / shards and extra = total mod shards in
  Array.init shards (fun s -> base + if s < extra then 1 else 0)

(* Shard count depends only on the workload size, never on [domains]: the
   per-shard RNG streams and counts are then identical whatever the domain
   count, which is what makes estimates reproducible across [domains]=1 and
   [domains]=k.  32 shards keep 4-8 domains load-balanced without splitting
   the RNG excessively. *)
let default_shards samples = if samples < 32 then samples else 32

(* Convergence cadence: record the running estimate every k-th completed
   sample, where k depends only on the shard's workload — so the recorded
   series, like the estimate itself, is identical at any domain count. *)
let series_stride todo = max 1 (todo / 8)

(* Per-shard task outcome for the collect-all-failures protocol: tasks
   never raise; workers run every shard to its own conclusion and failures
   are aggregated after the join. *)
type task_result =
  | Done of { hits : int; completed : int }
  | Failed of failure

let collect results =
  let failures =
    Array.to_list results
    |> List.filter_map (function Failed f -> Some f | Done _ -> None)
  in
  raise_failures failures;
  Array.fold_left
    (fun (h, c) -> function
      | Done { hits; completed } -> (h + hits, c + completed)
      | Failed _ -> assert false)
    (0, 0) results

let count_hits ~domains ~samples rng (run : Random.State.t -> bool) =
  if samples <= 0 then invalid_arg "Pool.count_hits: samples must be positive";
  let shards = default_shards samples in
  let rngs = split_rngs rng shards in
  let sizes = shard_sizes ~shards samples in
  (* Stats/series/tracing are latched once at task-creation time, and each
     task picks its whole loop body here: per-sample cost with everything
     off is exactly the [run rng] call plus two int increments — the same
     closures as before the telemetry existed. *)
  let obs = Obs.enabled () in
  let ser = Obs.Series.enabled () in
  let trc = Obs.Trace.enabled () in
  let tasks =
    Array.init shards (fun s ->
        let rng = rngs.(s) and todo = sizes.(s) in
        let k = series_stride todo in
        fun () ->
          (* Series points and trace events from shared closures below this
             frame (kernel steps, samplers) attribute to this shard. *)
          if ser || trc then Obs.set_tid s;
          let t0 = if obs || trc then Obs.now_ns () else 0 in
          let hits = ref 0 and completed = ref 0 in
          match
            if ser then
              while !completed < todo do
                if run rng then incr hits;
                incr completed;
                if !completed mod k = 0 then begin
                  let h = !hits and c = !completed in
                  let lo, hi = Obs.wilson_interval ~hits:h ~total:c in
                  Obs.Series.add "sampler.estimate" ~shard:s ~it:c
                    (float_of_int h /. float_of_int c);
                  Obs.Series.add "sampler.ci_low" ~shard:s ~it:c lo;
                  Obs.Series.add "sampler.ci_high" ~shard:s ~it:c hi
                end
              done
            else
              while !completed < todo do
                if run rng then incr hits;
                incr completed
              done
          with
          | () ->
            if trc then
              Obs.Trace.complete ~tid:s ~t0 ~dur:(Obs.now_ns () - t0)
                ~args:[ ("samples", todo); ("hits", !hits) ]
                "pool.shard";
            if obs then
              Obs.record_shard
                {
                  Obs.shard = s;
                  samples = todo;
                  hits = !hits;
                  ms = Obs.ms_of_ns (Obs.now_ns () - t0);
                };
            Done { hits = !hits; completed = todo }
          | exception e ->
            let backtrace = Printexc.get_raw_backtrace () in
            Failed { shard = s; completed = !completed; exn = e; backtrace })
  in
  let results = map_tasks ~domains tasks in
  (* The calling domain ran tasks too; restore its default shard stamp. *)
  if ser || trc then Obs.set_tid 0;
  fst (collect results)

type run = {
  hits : int;
  completed : int;
  requested : int;
  stopped : Guard.reason option;
}

type ckpt = { path : string; key : string; resume : Guard.Checkpoint.t option }

let resume_cells ~shards ~sizes ~samples ~key (saved : Guard.Checkpoint.t) =
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Guard.Checkpoint.Error m)) fmt
  in
  if saved.Guard.Checkpoint.key <> key then
    fail "checkpoint key mismatch: file has %S, this run is %S (different program, seed or parameters)"
      saved.Guard.Checkpoint.key key;
  if saved.Guard.Checkpoint.samples <> samples then
    fail "checkpoint sample-count mismatch: file has %d, this run wants %d"
      saved.Guard.Checkpoint.samples samples;
  if Array.length saved.Guard.Checkpoint.shards <> shards then
    fail "checkpoint shard-count mismatch: file has %d, this run wants %d"
      (Array.length saved.Guard.Checkpoint.shards) shards;
  Array.mapi
    (fun s (ss : Guard.Checkpoint.shard_state) ->
      if ss.shard <> s || ss.todo <> sizes.(s) || ss.completed > ss.todo then
        fail "checkpoint shard %d is inconsistent (todo %d, completed %d)" s ss.todo
          ss.completed;
      { ss with Guard.Checkpoint.rng = Random.State.copy ss.rng })
    saved.Guard.Checkpoint.shards

(* The governed pool: same sharding and RNG streams as [count_hits], plus
   per-sample budget/deadline/interrupt checks, deterministic fault hooks,
   retry-once on transient failures, and periodic checkpoints.  Shards
   replay from the last published cell state on retry and on resume, which
   is what makes interrupted+resumed runs bit-identical to uninterrupted
   ones: a cell's RNG state is exactly the state after its [completed]
   samples. *)
let governed ~guard ~fault ~ckpt ~domains ~samples rng run =
  let shards = default_shards samples in
  let rngs = split_rngs rng shards in
  let sizes = shard_sizes ~shards samples in
  (* A sample budget clamps each shard's quota up front with the same
     deterministic split as the samples themselves, so a budgeted run is a
     prefix of the unbudgeted one shard by shard. *)
  let clamp =
    match Guard.sample_budget guard with
    | Some b when b < samples -> Some b
    | _ -> None
  in
  let quotas =
    match clamp with Some b -> shard_sizes ~shards b | None -> sizes
  in
  let cells =
    match ckpt with
    | Some { resume = Some saved; key; _ } ->
      resume_cells ~shards ~sizes ~samples ~key saved
    | _ ->
      Array.init shards (fun s ->
          {
            Guard.Checkpoint.shard = s;
            todo = sizes.(s);
            completed = 0;
            hits = 0;
            rng = Random.State.copy rngs.(s);
          })
  in
  let save_mu = Mutex.create () in
  let save_ckpt =
    match ckpt with
    | None -> None
    | Some { path; key; _ } ->
      Some
        (fun () ->
          Mutex.protect save_mu (fun () ->
              Guard.Checkpoint.save path
                { Guard.Checkpoint.key; samples; shards = Array.copy cells }))
  in
  (* First stop reason wins and halts every shard at its next sample
     boundary; partial progress stays in the cells. *)
  let stop : Guard.reason option Atomic.t = Atomic.make None in
  let should_stop () =
    match Atomic.get stop with
    | Some _ -> true
    | None ->
      if Guard.interrupted () || Guard.cancelled guard then begin
        ignore (Atomic.compare_and_set stop None (Some Guard.Interrupted));
        true
      end
      else if Guard.deadline_exceeded guard then begin
        ignore (Atomic.compare_and_set stop None (Some (Guard.deadline_reason guard)));
        true
      end
      else false
  in
  let obs = Obs.enabled () in
  let ser = Obs.Series.enabled () in
  let trc = Obs.Trace.enabled () in
  let tasks =
    Array.init shards (fun s ->
        let todo = quotas.(s) in
        let k = series_stride sizes.(s) in
        let ckpt_stride = max 1 (sizes.(s) / 8) in
        let fhook = Guard.Fault.hook fault ~shard:s in
        fun () ->
          if ser || trc then Obs.set_tid s;
          let t0 = if obs || trc then Obs.now_ns () else 0 in
          let publish ~completed ~hits rng =
            cells.(s) <-
              {
                Guard.Checkpoint.shard = s;
                todo = sizes.(s);
                completed;
                hits;
                rng = Random.State.copy rng;
              }
          in
          let attempt att =
            let start = cells.(s) in
            let rng = Random.State.copy start.Guard.Checkpoint.rng in
            let hits = ref start.Guard.Checkpoint.hits in
            let completed = ref start.Guard.Checkpoint.completed in
            match
              while !completed < todo && not (should_stop ()) do
                (match fhook with
                | None -> ()
                | Some h -> h ~attempt:att ~completed:!completed);
                if run rng then incr hits;
                incr completed;
                if ser && !completed mod k = 0 then begin
                  let h = !hits and c = !completed in
                  let lo, hi = Obs.wilson_interval ~hits:h ~total:c in
                  Obs.Series.add "sampler.estimate" ~shard:s ~it:c
                    (float_of_int h /. float_of_int c);
                  Obs.Series.add "sampler.ci_low" ~shard:s ~it:c lo;
                  Obs.Series.add "sampler.ci_high" ~shard:s ~it:c hi
                end;
                if save_ckpt <> None && !completed mod ckpt_stride = 0 then begin
                  publish ~completed:!completed ~hits:!hits rng;
                  match save_ckpt with Some f -> f () | None -> ()
                end
              done
            with
            | () ->
              publish ~completed:!completed ~hits:!hits rng;
              Ok ()
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              (* Keep the partial progress: a resumed run replays the failed
                 shard from its last consistent state. *)
              publish ~completed:!completed ~hits:!hits rng;
              Error (e, bt)
          in
          let outcome =
            match attempt 0 with
            | Ok () -> None
            | Error (Guard.Fault.Transient _, _) -> begin
              (* Retry once: the cell still holds the last consistent
                 (completed, hits, rng) triple, so the replay is
                 deterministic — same stream, same samples. *)
              if obs then Obs.incr (Obs.counter "pool.retries");
              match attempt 1 with Ok () -> None | Error (e, bt) -> Some (e, bt)
            end
            | Error (e, bt) -> Some (e, bt)
          in
          match outcome with
          | Some (exn, backtrace) ->
            Failed { shard = s; completed = cells.(s).Guard.Checkpoint.completed; exn; backtrace }
          | None ->
            let cell = cells.(s) in
            if trc then
              Obs.Trace.complete ~tid:s ~t0 ~dur:(Obs.now_ns () - t0)
                ~args:
                  [
                    ("samples", cell.Guard.Checkpoint.completed);
                    ("hits", cell.Guard.Checkpoint.hits);
                  ]
                "pool.shard";
            if obs then
              Obs.record_shard
                {
                  Obs.shard = s;
                  samples = cell.Guard.Checkpoint.completed;
                  hits = cell.Guard.Checkpoint.hits;
                  ms = Obs.ms_of_ns (Obs.now_ns () - t0);
                };
            Done
              {
                hits = cell.Guard.Checkpoint.hits;
                completed = cell.Guard.Checkpoint.completed;
              })
  in
  let results = map_tasks ~domains tasks in
  if ser || trc then Obs.set_tid 0;
  (* Flush the end state unconditionally: a kill/stop between two stride
     points must not lose the progress published since the last save. *)
  (match save_ckpt with Some f -> f () | None -> ());
  let hits, completed = collect results in
  let stopped =
    match Atomic.get stop with
    | Some r -> Some r
    | None -> (
      match clamp with
      | Some budget -> Some (Guard.Samples { budget; completed })
      | None -> None)
  in
  { hits; completed; requested = samples; stopped }

let run_samples ?(guard = Guard.unlimited) ?fault ?ckpt ~domains ~samples rng run =
  if samples <= 0 then invalid_arg "Pool.run_samples: samples must be positive";
  let fault = match fault with Some f -> f | None -> Guard.Fault.of_env () in
  match ckpt with
  | None when (not (Guard.active guard)) && Guard.Fault.is_none fault ->
    (* Ungoverned fast path: exactly [count_hits], so governance stays
       zero-cost when off and fixed-seed estimates are unchanged. *)
    let hits = count_hits ~domains ~samples rng run in
    { hits; completed = samples; requested = samples; stopped = None }
  | _ -> governed ~guard ~fault ~ckpt ~domains ~samples rng run
