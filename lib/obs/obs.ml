(* Zero-cost-when-off observability: named monotonic counters with
   accumulated wall-clock time, a per-run phase table, and a per-shard
   sampling table.

   The contract that keeps the off path free: instrumentation sites consult
   [enabled] once, when they BUILD their closures (plan compilation, chain
   construction, pool task creation) or once per top-level operation — never
   per tuple inside a hot loop.  With stats disabled the compiled closures
   are exactly the uninstrumented ones, so there is nothing to measure and
   nothing to branch on.

   Counter updates are plain word-sized writes: tear-free and monotonic, but
   concurrent updates from [Eval.Pool] workers may lose increments (a
   lock-prefixed RMW per operator call costs more than the operators being
   measured).  Sequential runs — every CLI default — count exactly; the
   tables, which are written rarely, are mutex-protected. *)

type counter = {
  name : string;
  mutable count : int;
  mutable ns : int;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* The registry is a persistent map swapped atomically: lookups — which
   happen on every plan build, thousands of times in per-world evaluators —
   are lock-free; the mutex only serialises first registrations. *)
module SMap = Map.Make (String)

let registry : counter SMap.t Atomic.t = Atomic.make SMap.empty
let registry_mu = Mutex.create ()

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let counter name =
  match SMap.find_opt name (Atomic.get registry) with
  | Some c -> c
  | None ->
    with_lock registry_mu (fun () ->
        match SMap.find_opt name (Atomic.get registry) with
        | Some c -> c
        | None ->
          let c = { name; count = 0; ns = 0 } in
          Atomic.set registry (SMap.add name c (Atomic.get registry));
          c)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let add_ns c n = c.ns <- c.ns + n

let record_max c n = if n > c.count then c.count <- n

let count c = c.count
let ns c = c.ns

(* [gettimeofday] quantises around ~200ns at current epoch values — fine
   for operator executions that cost microseconds and up. *)
let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let ms_of_ns n = float_of_int n /. 1e6

let count_of name =
  match SMap.find_opt name (Atomic.get registry) with
  | Some c -> c.count
  | None -> 0

let ms_of name =
  match SMap.find_opt name (Atomic.get registry) with
  | Some c -> ms_of_ns c.ns
  | None -> 0.0

let snapshot () =
  (* SMap.fold yields keys in order, so the rows come out name-sorted. *)
  SMap.fold
    (fun name c acc ->
      let n = c.count and t = c.ns in
      if n = 0 && t = 0 then acc else (name, n, ms_of_ns t) :: acc)
    (Atomic.get registry) []
  |> List.rev

(* --- closure wrappers (the only sanctioned way to instrument hot paths) ---

   Ticks cost one plain increment per call.  Wall-clock is sampled: the
   tick's previous value selects 1-in-64 calls for timing and the measured
   duration is scaled by 64, so the two clock reads — the expensive part,
   individual operator executions often cost less than the clock grain —
   amortise to ~1/64 of a call each.  Operator [ms] is therefore an
   estimate; [ticks] are exact on sequential runs and phase times always. *)

let sample_mask = 63 (* time calls where ticks land mask = 0, scale by mask+1 *)

let wrap1 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    fun x ->
      let k = c.count in
      c.count <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x in
        add_ns c ((now_ns () - t0) * (sample_mask + 1));
        r
      end
      else f x
  end

let wrap2 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    fun x y ->
      let k = c.count in
      c.count <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x y in
        add_ns c ((now_ns () - t0) * (sample_mask + 1));
        r
      end
      else f x y
  end

(* --- phases --------------------------------------------------------------- *)

let phase_rows : (string * float) list ref = ref []
let phase_mu = Mutex.create ()

let add_phase name ms =
  with_lock phase_mu (fun () ->
      let rec bump = function
        | [] -> [ (name, ms) ]
        | (n, acc) :: rest when String.equal n name -> (n, acc +. ms) :: rest
        | row :: rest -> row :: bump rest
      in
      phase_rows := bump !phase_rows)

let phase name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = now_ns () in
    let finally () = add_phase name (ms_of_ns (now_ns () - t0)) in
    Fun.protect ~finally f
  end

let phases () = with_lock phase_mu (fun () -> !phase_rows)

(* --- shard table ----------------------------------------------------------- *)

type shard = {
  shard : int;
  samples : int;
  hits : int;
  ms : float;
}

let shard_rows : shard list ref = ref []
let shard_mu = Mutex.create ()

let record_shard s = with_lock shard_mu (fun () -> shard_rows := s :: !shard_rows)

let shards () =
  List.sort
    (fun a b -> Int.compare a.shard b.shard)
    (with_lock shard_mu (fun () -> !shard_rows))

(* --- reset ----------------------------------------------------------------- *)

let reset () =
  SMap.iter
    (fun _ c ->
      c.count <- 0;
      c.ns <- 0)
    (Atomic.get registry);
  with_lock phase_mu (fun () -> phase_rows := []);
  with_lock shard_mu (fun () -> shard_rows := [])

(* --- JSON ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      (* NaN/inf are not JSON; they should never occur, but emit null rather
         than an unparseable token if they do. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b
end
