(* Zero-cost-when-off observability: named monotonic counters with
   accumulated wall-clock time, a per-run phase table, a per-shard sampling
   table, per-iteration time series ([Series]), a span/instant event
   recorder flushed to Chrome trace-event JSON ([Trace]), mergeable
   log-bucketed histograms ([Hist]) and leveled structured JSON logging
   ([Log]).

   The contract that keeps the off path free: instrumentation sites consult
   [enabled] (or [Trace.enabled]/[Series.enabled]/[Log.enabled]) once, when
   they BUILD their closures (plan compilation, chain construction, pool
   task creation) or once per top-level operation — never per tuple inside
   a hot loop.  With everything disabled the compiled closures are exactly
   the uninstrumented ones, so there is nothing to measure and nothing to
   branch on.

   Counter updates are plain word-sized writes into a per-(scope, domain)
   cell lane: each domain owns its lane, so concurrent [Eval.Pool] workers
   never contend and never lose increments — the daemon exports exact
   counts without an atomic RMW on the operator path.  Readers merge the
   lanes on demand; the merge is exact once writers have quiesced (domain
   joins and the pool's task hand-off publish the writes), which every
   reporting path guarantees.  The rarely-written tables are
   mutex-protected.  Trace buffers are single-writer (one per (scope, tid),
   and a tid is owned by whichever domain runs that shard's task), so span
   recording takes no lock either. *)

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- JSON ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (* Escapes everything RFC 8259 requires: the quote, the backslash, and
     every control byte below 0x20 (with the usual short forms for \n, \r,
     \t, \b, \f).  Bytes >= 0x20 pass through untouched — relation-name
     derived strings are the common case and they are plain ASCII, but any
     byte sequence round-trips as the same byte sequence. *)
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | '\b' -> Buffer.add_string b "\\b"
        | '\012' -> Buffer.add_string b "\\f"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      (* NaN/inf are not JSON; they should never occur, but emit null rather
         than an unparseable token if they do. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b

  let to_file path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_string t);
        output_char oc '\n')
end

(* --- histograms ------------------------------------------------------------

   One fixed geometric bucket grid shared by every histogram in the
   process: upper bounds grow by 2^(1/4) (~19% relative error bound) from
   1, deduplicated at the small end where rounding collapses steps, with a
   terminal +Inf overflow bucket.  Because the grid is a program constant,
   merging histograms is element-wise addition of bucket counts — exact,
   and independent of how the observations were sharded across domains or
   scrape intervals.  That is the property that lets shard-local
   histograms, per-request histograms and the daemon's cumulative families
   all add up without re-bucketing error. *)

module Hist = struct
  let bounds =
    let rec go acc v =
      let b = int_of_float (Float.round v) in
      let acc = match acc with b' :: _ when b' = b -> acc | _ -> b :: acc in
      if b > max_int / 2 then List.rev acc else go acc (v *. sqrt (sqrt 2.0))
    in
    Array.of_list (go [] 1.0)

  let overflow = Array.length bounds

  type t = {
    counts : int array; (* one slot per finite bound + the overflow slot *)
    mutable total : int;
    mutable sum : int;
  }

  let make () = { counts = Array.make (overflow + 1) 0; total = 0; sum = 0 }

  (* Smallest bucket whose upper bound covers [v]; bounds are sorted, so
     binary search with invariant bounds.(lo) < v <= bounds.(hi). *)
  let index v =
    if v <= bounds.(0) then 0
    else if v > bounds.(overflow - 1) then overflow
    else begin
      let lo = ref 0 and hi = ref (overflow - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let observe t v =
    let v = max 0 v in
    let i = index v in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum + v

  let total t = t.total
  let sum t = t.sum

  let merge a b =
    let t = make () in
    Array.iteri (fun i n -> t.counts.(i) <- n + b.counts.(i)) a.counts;
    t.total <- a.total + b.total;
    t.sum <- a.sum + b.sum;
    t

  let equal a b = a.total = b.total && a.sum = b.sum && a.counts = b.counts

  (* The observation of rank ceil(q * total) sits in some bucket; its upper
     bound over-estimates the true order statistic by at most one bucket
     width (a factor 2^(1/4)).  Overflow observations report the last
     finite bound — a floor, clearly marked by the +Inf bucket count. *)
  let quantile t q =
    if t.total = 0 then 0
    else begin
      let rank = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      let rank = max 1 (min t.total rank) in
      let i = ref 0 and cum = ref 0 in
      while !cum < rank do
        cum := !cum + t.counts.(!i);
        if !cum < rank then incr i
      done;
      bounds.(min !i (overflow - 1))
    end

  let cumulative t =
    let acc = ref [] and cum = ref 0 in
    Array.iteri
      (fun i n ->
        if n > 0 then begin
          cum := !cum + n;
          if i < overflow then acc := (Some bounds.(i), !cum) :: !acc
        end)
      t.counts;
    List.rev !acc @ [ (None, t.total) ]
end

(* --- monotone clock --------------------------------------------------------

   [gettimeofday] quantises around ~200ns at current epoch values — fine
   for operator executions that cost microseconds and up.  The wall clock
   can step backwards (NTP adjustments), which would turn span and sampled
   durations negative and corrupt the ×64-scaled estimates, so readings are
   clamped against a global high-water mark: [now_ns] is non-decreasing
   across all domains. *)

let last_ns = Atomic.make 0

let push_ns t =
  let rec settle () =
    let seen = Atomic.get last_ns in
    if t <= seen then seen
    else if Atomic.compare_and_set last_ns seen t then t
    else settle ()
  in
  settle ()

let now_ns () = push_ns (int_of_float (Unix.gettimeofday () *. 1e9))

(* Advance the high-water mark without consulting the wall clock: the tested
   equivalent of an NTP step forward.  Deadline arithmetic built on [now_ns]
   must stay monotone under any such latch. *)
let advance_ns n = ignore (push_ns (Atomic.get last_ns + max 0 n))

let ms_of_ns n = float_of_int n /. 1e6

(* The registry is a persistent map swapped atomically: lookups — which
   happen on every plan build, thousands of times in per-world evaluators —
   are lock-free; the mutex only serialises first registrations. *)
module SMap = Map.Make (String)

type shard = {
  shard : int;
  samples : int;
  hits : int;
  ms : float;
}

type series_observer = name:string -> shard:int -> it:int -> float -> unit

(* Trace events, defined outside the Trace module so scope buffers can hold
   them; re-exported as [Trace.event] with the same field names. *)
type tevent = {
  ph : char; (* 'B' | 'E' | 'X' | 'i' *)
  name : string;
  ts : int; (* ns since the scope's trace epoch *)
  dur : int; (* ns; complete ('X') events only *)
  tid : int;
  args : (string * int) list;
}

(* --- scopes ----------------------------------------------------------------

   Counters, phases, the shard table, series buffers and trace buffers live
   in a *scope* so a resident server can give each request its own arena:
   one tenant's operator ticks, series points or spans must not bleed into
   another tenant's stats report or trace export.  The default scope is
   process-global — every CLI path behaves exactly as before — and the
   current scope is domain-local state ([Domain.DLS]), which fits the
   server's session-per-domain shape: entering a scope on one domain never
   disturbs runs on another, and [Eval.Pool] workers enter the caller's
   scope per task.

   Counters are striped: each domain writes a private cell lane (2 slots
   per counter — count and sampled ns) and readers merge the lanes, so no
   increment is ever lost to a concurrent plain write.  A counter carries
   its dense registration index and its owning scope; the executing
   domain's lane for that scope is cached in domain-local storage, so the
   hot path is a DLS read, a physical-equality check and two array
   writes. *)

type counter = {
  c_name : string;
  c_id : int; (* dense registration index within c_scope *)
  c_scope : scope;
  mutable c_max : bool; (* lanes merge with max instead of sum *)
}

and lane = {
  l_dom : int;
  mutable l_cells : int array; (* 2 slots per counter id: count, ns *)
}

and sbuf = {
  sb_name : string;
  sb_shard : int;
  mutable sb_points : (int * float) array;
  mutable sb_len : int;
  mutable sb_dropped : int;
}

and tbuf = {
  tb_tid : int;
  tb_events : tevent array;
  mutable tb_len : int;
  mutable tb_dropped : int;
}

and scope = {
  on : bool Atomic.t;
  registry : counter SMap.t Atomic.t;
  registry_mu : Mutex.t; (* also guards next_id and the lane list *)
  mutable next_id : int;
  mutable lanes : lane list;
  mutable phase_rows : (string * float) list;
  phase_mu : Mutex.t;
  mutable shard_rows : shard list;
  shard_mu : Mutex.t;
  (* series state *)
  s_on : bool Atomic.t;
  s_table : (string * int, sbuf) Hashtbl.t;
  s_mu : Mutex.t;
  mutable s_observer : series_observer option;
  (* trace state *)
  t_on : bool Atomic.t;
  t_epoch : int Atomic.t;
  t_bufs : tbuf option array Atomic.t;
  t_mu : Mutex.t;
}

let make_scope () =
  {
    on = Atomic.make false;
    registry = Atomic.make SMap.empty;
    registry_mu = Mutex.create ();
    next_id = 0;
    lanes = [];
    phase_rows = [];
    phase_mu = Mutex.create ();
    shard_rows = [];
    shard_mu = Mutex.create ();
    s_on = Atomic.make false;
    s_table = Hashtbl.create 32;
    s_mu = Mutex.create ();
    s_observer = None;
    t_on = Atomic.make false;
    t_epoch = Atomic.make (now_ns ());
    t_bufs = Atomic.make [||];
    t_mu = Mutex.create ();
  }

let global_scope = make_scope ()
let scope_key = Domain.DLS.new_key (fun () -> global_scope)
let current_scope () = Domain.DLS.get scope_key

module Scope = struct
  type t = scope

  let make = make_scope
  let global = global_scope
  let current = current_scope

  let run s f =
    let prev = Domain.DLS.get scope_key in
    Domain.DLS.set scope_key s;
    Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key prev) f
end

let enabled () = Atomic.get (current_scope ()).on
let set_enabled b = Atomic.set (current_scope ()).on b

let counter name =
  let sc = current_scope () in
  match SMap.find_opt name (Atomic.get sc.registry) with
  | Some c -> c
  | None ->
    with_lock sc.registry_mu (fun () ->
        match SMap.find_opt name (Atomic.get sc.registry) with
        | Some c -> c
        | None ->
          let c = { c_name = name; c_id = sc.next_id; c_scope = sc; c_max = false } in
          sc.next_id <- sc.next_id + 1;
          Atomic.set sc.registry (SMap.add name c (Atomic.get sc.registry));
          c)

(* --- lanes -----------------------------------------------------------------

   One lane per (scope, domain), created on first touch and cached in DLS
   keyed by physical scope identity.  Lane creation takes the registry
   mutex once per (scope, domain) pair; after that every increment is a
   plain write into the domain-private array.  Only the owning domain grows
   its lane, so the merge path's unsynchronised [l_cells] read sees at
   worst a superseded array with stale zeros — and reporting paths always
   run after the writers have quiesced (join / task hand-off), where the
   merge is exact. *)

let lane_key : (scope * lane) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let lane_for sc =
  match Domain.DLS.get lane_key with
  | Some (s, l) when s == sc -> l
  | _ ->
    let dom = (Domain.self () :> int) in
    let l =
      with_lock sc.registry_mu (fun () ->
          match List.find_opt (fun l -> l.l_dom = dom) sc.lanes with
          | Some l -> l
          | None ->
            let l = { l_dom = dom; l_cells = Array.make 16 0 } in
            sc.lanes <- l :: sc.lanes;
            l)
    in
    Domain.DLS.set lane_key (Some (sc, l));
    l

let cells_for c =
  let l = lane_for c.c_scope in
  let need = (2 * c.c_id) + 2 in
  let cells = l.l_cells in
  if Array.length cells >= need then cells
  else begin
    let bigger = Array.make (max need (2 * Array.length cells)) 0 in
    Array.blit cells 0 bigger 0 (Array.length cells);
    l.l_cells <- bigger;
    bigger
  end

let incr c =
  let cells = cells_for c in
  let i = 2 * c.c_id in
  cells.(i) <- cells.(i) + 1

let add c n =
  let cells = cells_for c in
  let i = 2 * c.c_id in
  cells.(i) <- cells.(i) + n

let add_ns c n =
  let cells = cells_for c in
  let i = (2 * c.c_id) + 1 in
  cells.(i) <- cells.(i) + n

let record_max c n =
  if not c.c_max then c.c_max <- true;
  let cells = cells_for c in
  let i = 2 * c.c_id in
  if n > cells.(i) then cells.(i) <- n

let lane_get l i =
  let cells = l.l_cells in
  if i < Array.length cells then cells.(i) else 0

(* Call under [c.c_scope.registry_mu]. *)
let merge_lanes c =
  List.fold_left
    (fun (cnt, tns) l ->
      let v = lane_get l (2 * c.c_id) and t = lane_get l ((2 * c.c_id) + 1) in
      ((if c.c_max then max cnt v else cnt + v), tns + t))
    (0, 0) c.c_scope.lanes

let count c = fst (with_lock c.c_scope.registry_mu (fun () -> merge_lanes c))
let ns c = snd (with_lock c.c_scope.registry_mu (fun () -> merge_lanes c))

let count_of name =
  match SMap.find_opt name (Atomic.get (current_scope ()).registry) with
  | Some c -> count c
  | None -> 0

let ms_of name =
  match SMap.find_opt name (Atomic.get (current_scope ()).registry) with
  | Some c -> ms_of_ns (ns c)
  | None -> 0.0

let snapshot () =
  let sc = current_scope () in
  with_lock sc.registry_mu (fun () ->
      (* SMap.fold yields keys in order, so the rows come out name-sorted. *)
      SMap.fold
        (fun name c acc ->
          let n, t = merge_lanes c in
          if n = 0 && t = 0 then acc else (name, n, ms_of_ns t) :: acc)
        (Atomic.get sc.registry) []
      |> List.rev)

(* --- closure wrappers (the only sanctioned way to instrument hot paths) ---

   Ticks cost one plain increment per call.  Wall-clock is sampled: the
   lane-local tick's previous value selects 1-in-64 calls for timing and
   the measured duration is scaled by 64, so the two clock reads — the
   expensive part, individual operator executions often cost less than the
   clock grain — amortise to ~1/64 of a call each.  Operator [ms] is
   therefore an estimate; [ticks] are exact always (each domain ticks its
   own lane) and phase times exact too.  The timing write re-resolves the
   cell array: [f] may itself register counters and grow this lane. *)

let sample_mask = 63 (* time calls where ticks land mask = 0, scale by mask+1 *)

let wrap1 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    let i = 2 * c.c_id in
    fun x ->
      let cells = cells_for c in
      let k = cells.(i) in
      cells.(i) <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x in
        let dur = max 0 (now_ns () - t0) * (sample_mask + 1) in
        let cells = cells_for c in
        cells.(i + 1) <- cells.(i + 1) + dur;
        r
      end
      else f x
  end

let wrap2 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    let i = 2 * c.c_id in
    fun x y ->
      let cells = cells_for c in
      let k = cells.(i) in
      cells.(i) <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x y in
        let dur = max 0 (now_ns () - t0) * (sample_mask + 1) in
        let cells = cells_for c in
        cells.(i + 1) <- cells.(i + 1) + dur;
        r
      end
      else f x y
  end

(* --- current shard / trace thread id --------------------------------------

   Recording sites sit inside closures shared by every shard ([run_once],
   plan operators), so "which shard is this?" cannot be threaded as an
   argument without touching every signature on the hot path.  Instead
   [Eval.Pool] stamps the executing domain with the shard id of the task it
   is about to run; series points and trace events read it back.  Work
   stealing migrates *tasks* across domains, never a task mid-run, so the
   stamp is set per task, not per domain. *)

let tid_key = Domain.DLS.new_key (fun () -> 0)
let current_tid () = Domain.DLS.get tid_key
let set_tid t = Domain.DLS.set tid_key t

(* Wilson score interval at 95%: the sampler's running confidence band.
   Unlike the normal approximation it stays inside [0,1] and behaves at
   p-hat = 0/1, which early iterations always hit. *)
let wilson_interval ~hits ~total =
  if total <= 0 then (0.0, 1.0)
  else begin
    let z = 1.959963984540054 in
    let n = float_of_int total in
    let p = float_of_int hits /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let half = z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) in
    (* The exact bounds at p-hat = 0 (lower) and 1 (upper) are 0 and 1;
       pin them so rounding noise cannot push the point estimate outside
       its own interval. *)
    let lo = if hits = 0 then 0.0 else Float.max 0.0 ((centre -. half) /. denom) in
    let hi = if hits = total then 1.0 else Float.min 1.0 ((centre +. half) /. denom) in
    (lo, hi)
  end

(* --- per-iteration time series ---------------------------------------------

   Scoped like counters: a per-request scope gets its own table, so one
   session's progress points never interleave with another's. *)

module Series = struct
  let enabled () = Atomic.get (current_scope ()).s_on
  let set_enabled b = Atomic.set (current_scope ()).s_on b

  (* Points arrive rarely — every k-th sample, once per BFS level, once per
     fixpoint step — so a mutex per append is cheap next to the work between
     appends; the hot-path discipline lives at the recording sites, which
     latch [enabled] at closure-build time. *)
  let capacity = 65536

  type observer = series_observer

  let set_observer f =
    let sc = current_scope () in
    with_lock sc.s_mu (fun () -> sc.s_observer <- f)

  let add ?shard name ~it v =
    let sc = current_scope () in
    if Atomic.get sc.s_on then begin
      let shard = match shard with Some s -> s | None -> current_tid () in
      let notify =
        with_lock sc.s_mu (fun () ->
            let key = (name, shard) in
            let b =
              match Hashtbl.find_opt sc.s_table key with
              | Some b -> b
              | None ->
                let b =
                  { sb_name = name; sb_shard = shard; sb_points = Array.make 64 (0, 0.0);
                    sb_len = 0; sb_dropped = 0 }
                in
                Hashtbl.add sc.s_table key b;
                b
            in
            (if b.sb_len >= capacity then b.sb_dropped <- b.sb_dropped + 1
             else begin
               if b.sb_len = Array.length b.sb_points then begin
                 let bigger = Array.make (min capacity (2 * b.sb_len)) (0, 0.0) in
                 Array.blit b.sb_points 0 bigger 0 b.sb_len;
                 b.sb_points <- bigger
               end;
               b.sb_points.(b.sb_len) <- (it, v);
               b.sb_len <- b.sb_len + 1
             end);
            sc.s_observer)
      in
      (* Outside the lock: the observer may print, and a slow consumer must
         not serialise other shards' appends. *)
      match notify with None -> () | Some f -> f ~name ~shard ~it v
    end

  (* Rows sorted by (name, shard): the merge is a pure function of what was
     recorded, whatever order shards finished in — which is what makes
     fixed-seed series identical at any domain count. *)
  let merged () =
    let sc = current_scope () in
    let rows =
      with_lock sc.s_mu (fun () ->
          Hashtbl.fold
            (fun _ b acc -> (b.sb_name, b.sb_shard, Array.sub b.sb_points 0 b.sb_len) :: acc)
            sc.s_table [])
    in
    rows
    |> List.sort (fun (n1, s1, _) (n2, s2, _) ->
           match String.compare n1 n2 with 0 -> Int.compare s1 s2 | c -> c)
    |> List.map (fun (name, shard, pts) -> (name, shard, Array.to_list pts))

  let counts () =
    let totals =
      List.fold_left
        (fun acc (name, _, pts) ->
          let n = List.length pts in
          match SMap.find_opt name acc with
          | Some m -> SMap.add name (m + n) acc
          | None -> SMap.add name n acc)
        SMap.empty (merged ())
    in
    SMap.bindings totals

  let dropped () =
    let sc = current_scope () in
    with_lock sc.s_mu (fun () -> Hashtbl.fold (fun _ b acc -> acc + b.sb_dropped) sc.s_table 0)

  let reset () =
    let sc = current_scope () in
    with_lock sc.s_mu (fun () -> Hashtbl.reset sc.s_table)

  let json () =
    Json.Obj
      [ ("schema", Json.Str "probdb.series/1");
        ( "series",
          Json.List
            (List.map
               (fun (name, shard, pts) ->
                 Json.Obj
                   [ ("name", Json.Str name);
                     ("shard", Json.Int shard);
                     ( "points",
                       Json.List
                         (List.map (fun (it, v) -> Json.List [ Json.Int it; Json.Float v ]) pts)
                     )
                   ])
               (merged ())) );
        ("dropped", Json.Int (dropped ()))
      ]

  let write path = Json.to_file path (json ())
end

(* --- trace events -----------------------------------------------------------

   Scoped like counters and series: buffers hang off the current scope, so
   a per-request scope yields a tenant-clean trace — two concurrent daemon
   sessions record into disjoint buffer sets even at the same tid. *)

module Trace = struct
  let enabled () = Atomic.get (current_scope ()).t_on
  let set_enabled b = Atomic.set (current_scope ()).t_on b

  type event = tevent = {
    ph : char; (* 'B' | 'E' | 'X' | 'i' *)
    name : string;
    ts : int; (* ns since the scope's trace epoch *)
    dur : int; (* ns; complete ('X') events only *)
    tid : int;
    args : (string * int) list;
  }

  (* Timestamps are rebased to the scope's epoch (creation time, or the
     last [reset]): Chrome trace [ts] is microseconds and must survive a
     float round-trip in viewers, so epoch-sized values (~1.7e15 µs) would
     lose their low bits — run-relative ones fit comfortably. *)

  let capacity = 65536

  let dummy = { ph = 'i'; name = ""; ts = 0; dur = 0; tid = 0; args = [] }

  (* One buffer per (scope, tid), looked up through an atomically published
     array: the append path is a bounds check, a load and two plain writes
     — no lock, because a buffer has a single writer (the domain running
     that shard's task; flushes happen after the joins).  The mutex only
     guards growing the array and creating buffers. *)
  let install sc tid =
    with_lock sc.t_mu (fun () ->
        let a = Atomic.get sc.t_bufs in
        let a =
          if tid < Array.length a then a
          else begin
            let bigger = Array.make (max (tid + 1) (2 * max 1 (Array.length a))) None in
            Array.blit a 0 bigger 0 (Array.length a);
            bigger
          end
        in
        match a.(tid) with
        | Some b ->
          Atomic.set sc.t_bufs a;
          b
        | None ->
          let b = { tb_tid = tid; tb_events = Array.make capacity dummy; tb_len = 0; tb_dropped = 0 } in
          a.(tid) <- Some b;
          Atomic.set sc.t_bufs a;
          b)

  let buffer sc tid =
    let a = Atomic.get sc.t_bufs in
    if tid < Array.length a then match a.(tid) with Some b -> b | None -> install sc tid
    else install sc tid

  let record sc (ev : event) =
    let b = buffer sc ev.tid in
    (* Full buffers drop the *new* event and count it, instead of
       overwriting old ones: destructive wrap-around would orphan the E of
       any span whose B it ate, and a trace that silently loses its oldest
       spans misleads more than one that reports how much it dropped. *)
    if b.tb_len >= capacity then b.tb_dropped <- b.tb_dropped + 1
    else begin
      b.tb_events.(b.tb_len) <- ev;
      b.tb_len <- b.tb_len + 1
    end

  let ts_of sc t = max 0 (t - Atomic.get sc.t_epoch)

  let instant ?(args = []) ?tid name =
    let sc = current_scope () in
    if Atomic.get sc.t_on then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record sc { ph = 'i'; name; ts = ts_of sc (now_ns ()); dur = 0; tid; args }
    end

  let begin_span ?(args = []) ?tid name =
    let sc = current_scope () in
    if Atomic.get sc.t_on then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record sc { ph = 'B'; name; ts = ts_of sc (now_ns ()); dur = 0; tid; args }
    end

  let end_span ?tid name =
    let sc = current_scope () in
    if Atomic.get sc.t_on then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record sc { ph = 'E'; name; ts = ts_of sc (now_ns ()); dur = 0; tid; args = [] }
    end

  (* [t0] is an absolute [now_ns] reading; the duration is clamped like
     every other delta so a clock step cannot produce a negative span. *)
  let complete ?(args = []) ?tid ~t0 ~dur name =
    let sc = current_scope () in
    if Atomic.get sc.t_on then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record sc { ph = 'X'; name; ts = ts_of sc t0; dur = max 0 dur; tid; args }
    end

  let with_span ?(args = []) name f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> complete ~args ~t0 ~dur:(now_ns () - t0) name) f
    end

  let events () =
    let a = Atomic.get (current_scope ()).t_bufs in
    let acc = ref [] in
    for t = Array.length a - 1 downto 0 do
      match a.(t) with
      | None -> ()
      | Some b ->
        (* Recording order is completion order, and a complete ('X') event
           carries its *start* timestamp — so a long span recorded after a
           short one would read out of order.  A stable per-tid sort by ts
           restores the timeline while leaving same-instant events (B/E
           pairs from back-to-back spans) in recording order. *)
        let tid_events = Array.sub b.tb_events 0 b.tb_len in
        let keyed = Array.mapi (fun i e -> (e.ts, i, e)) tid_events in
        Array.sort (fun (ts, i, _) (ts', i', _) -> Stdlib.compare (ts, i) (ts', i')) keyed;
        for i = Array.length keyed - 1 downto 0 do
          let _, _, e = keyed.(i) in
          acc := e :: !acc
        done
    done;
    !acc

  let dropped () =
    Array.fold_left
      (fun acc -> function None -> acc | Some b -> acc + b.tb_dropped)
      0
      (Atomic.get (current_scope ()).t_bufs)

  let reset () =
    let sc = current_scope () in
    with_lock sc.t_mu (fun () -> Atomic.set sc.t_bufs [||]);
    Atomic.set sc.t_epoch (now_ns ())

  (* Chrome trace-event JSON.  [ts]/[dur] are integer microseconds (the
     format's unit); [pid] and [tid] both carry the shard id, so Perfetto
     groups one track per shard. *)
  let json_of_event e =
    let base =
      [ ("name", Json.Str e.name);
        ("ph", Json.Str (String.make 1 e.ph));
        ("ts", Json.Int (e.ts / 1000));
        ("pid", Json.Int e.tid);
        ("tid", Json.Int e.tid)
      ]
    in
    let dur = if e.ph = 'X' then [ ("dur", Json.Int (max 0 e.dur / 1000)) ] else [] in
    let scope = if e.ph = 'i' then [ ("s", Json.Str "t") ] else [] in
    let args =
      if e.args = [] then []
      else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.args)) ]
    in
    Json.Obj (base @ dur @ scope @ args)

  (* Extra top-level keys are legal in the trace format (viewers ignore the
     ones they do not know), so the per-iteration series ride along in the
     same file: one artifact per run. *)
  let json () =
    Json.Obj
      [ ("traceEvents", Json.List (List.map json_of_event (events ())));
        ("displayTimeUnit", Json.Str "ms");
        ("series", Series.json ());
        ("dropped", Json.Int (dropped ()))
      ]

  let write path = Json.to_file path (json ())
end

(* --- structured logging ----------------------------------------------------

   One sink per process (a daemon has one log stream), installed once at
   startup — so unlike counters/series/trace the switch is global, and the
   default (no sink) costs a single atomic load per site latch.  Lines are
   complete JSON objects emitted under a mutex: concurrent session domains
   never interleave bytes mid-line. *)

module Log = struct
  type level = Debug | Info | Warn | Error

  let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
  let slug = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

  type sink = {
    s_min : int;
    s_emit : string -> unit;
  }

  let sink : sink option Atomic.t = Atomic.make None
  let sink_mu = Mutex.create ()

  let set_sink ?(level = Info) emit =
    Atomic.set sink
      (match emit with None -> None | Some e -> Some { s_min = severity level; s_emit = e })

  let enabled lvl =
    match Atomic.get sink with None -> false | Some s -> severity lvl >= s.s_min

  (* ISO-8601 UTC with milliseconds, derived from [now_ns] so log lines,
     spans and deadlines share one clock. *)
  let timestamp ns =
    let tm = Unix.gmtime (float_of_int ns /. 1e9) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
      (ns / 1_000_000 mod 1000)

  let log lvl event fields =
    match Atomic.get sink with
    | None -> ()
    | Some s when severity lvl < s.s_min -> ()
    | Some s ->
      let t = now_ns () in
      let line =
        Json.to_string
          (Json.Obj
             (("ts", Json.Str (timestamp t))
             :: ("ts_ns", Json.Int t)
             :: ("level", Json.Str (slug lvl))
             :: ("event", Json.Str event)
             :: fields))
      in
      with_lock sink_mu (fun () -> s.s_emit line)
end

(* --- phases --------------------------------------------------------------- *)

let add_phase name ms =
  let sc = current_scope () in
  with_lock sc.phase_mu (fun () ->
      let rec bump = function
        | [] -> [ (name, ms) ]
        | (n, acc) :: rest when String.equal n name -> (n, acc +. ms) :: rest
        | row :: rest -> row :: bump rest
      in
      sc.phase_rows <- bump sc.phase_rows)

(* Phases double as trace spans: a run with tracing but no [--stats] still
   gets its compile/evaluate/sample slices. *)
let phase name f =
  let on = enabled () in
  let tr = Trace.enabled () in
  if not (on || tr) then f ()
  else begin
    let t0 = now_ns () in
    let finally () =
      let dur = max 0 (now_ns () - t0) in
      if on then add_phase name (ms_of_ns dur);
      if tr then Trace.complete ~t0 ~dur name
    in
    Fun.protect ~finally f
  end

let phases () =
  let sc = current_scope () in
  with_lock sc.phase_mu (fun () -> sc.phase_rows)

(* --- shard table ----------------------------------------------------------- *)

let record_shard s =
  let sc = current_scope () in
  with_lock sc.shard_mu (fun () -> sc.shard_rows <- s :: sc.shard_rows)

let shards () =
  let sc = current_scope () in
  List.sort
    (fun a b -> Int.compare a.shard b.shard)
    (with_lock sc.shard_mu (fun () -> sc.shard_rows))

(* --- reset ----------------------------------------------------------------- *)

let reset () =
  let sc = current_scope () in
  with_lock sc.registry_mu (fun () ->
      List.iter (fun l -> Array.fill l.l_cells 0 (Array.length l.l_cells) 0) sc.lanes);
  with_lock sc.phase_mu (fun () -> sc.phase_rows <- []);
  with_lock sc.shard_mu (fun () -> sc.shard_rows <- [])
