(* Zero-cost-when-off observability: named monotonic counters with
   accumulated wall-clock time, a per-run phase table, a per-shard sampling
   table, per-iteration time series ([Series]) and a span/instant event
   recorder flushed to Chrome trace-event JSON ([Trace]).

   The contract that keeps the off path free: instrumentation sites consult
   [enabled] (or [Trace.enabled]/[Series.enabled]) once, when they BUILD
   their closures (plan compilation, chain construction, pool task creation)
   or once per top-level operation — never per tuple inside a hot loop.
   With everything disabled the compiled closures are exactly the
   uninstrumented ones, so there is nothing to measure and nothing to branch
   on.

   Counter updates are plain word-sized writes: tear-free and monotonic, but
   concurrent updates from [Eval.Pool] workers may lose increments (a
   lock-prefixed RMW per operator call costs more than the operators being
   measured).  Sequential runs — every CLI default — count exactly; the
   tables, which are written rarely, are mutex-protected.  Trace buffers are
   single-writer (one per tid, and a tid is owned by whichever domain runs
   that shard's task), so span recording takes no lock either. *)

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* --- JSON ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  (* Escapes everything RFC 8259 requires: the quote, the backslash, and
     every control byte below 0x20 (with the usual short forms for \n, \r,
     \t, \b, \f).  Bytes >= 0x20 pass through untouched — relation-name
     derived strings are the common case and they are plain ASCII, but any
     byte sequence round-trips as the same byte sequence. *)
  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun ch ->
        match ch with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | '\b' -> Buffer.add_string b "\\b"
        | '\012' -> Buffer.add_string b "\\f"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      (* NaN/inf are not JSON; they should never occur, but emit null rather
         than an unparseable token if they do. *)
      if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
      else Buffer.add_string b "null"
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ", ";
          write b x)
        xs;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          write b v)
        fields;
      Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b

  let to_file path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (to_string t);
        output_char oc '\n')
end

(* --- counters -------------------------------------------------------------- *)

type counter = {
  name : string;
  mutable count : int;
  mutable ns : int;
}

type shard = {
  shard : int;
  samples : int;
  hits : int;
  ms : float;
}

(* The registry is a persistent map swapped atomically: lookups — which
   happen on every plan build, thousands of times in per-world evaluators —
   are lock-free; the mutex only serialises first registrations. *)
module SMap = Map.Make (String)

(* --- scopes ----------------------------------------------------------------

   Counters, phases and the shard table live in a *scope* so a resident
   server can give each request its own registry: one tenant's operator
   ticks must not bleed into another tenant's stats report.  The default
   scope is process-global — every CLI path behaves exactly as before — and
   the current scope is domain-local state ([Domain.DLS]), which fits the
   server's session-per-domain shape: entering a scope on one domain never
   disturbs runs on another.  [Series]/[Trace] stay global: they are opt-in
   whole-process artifacts, not per-request reports. *)

type scope = {
  on : bool Atomic.t;
  registry : counter SMap.t Atomic.t;
  registry_mu : Mutex.t;
  mutable phase_rows : (string * float) list;
  phase_mu : Mutex.t;
  mutable shard_rows : shard list;
  shard_mu : Mutex.t;
}

let make_scope () =
  {
    on = Atomic.make false;
    registry = Atomic.make SMap.empty;
    registry_mu = Mutex.create ();
    phase_rows = [];
    phase_mu = Mutex.create ();
    shard_rows = [];
    shard_mu = Mutex.create ();
  }

let global_scope = make_scope ()
let scope_key = Domain.DLS.new_key (fun () -> global_scope)
let current_scope () = Domain.DLS.get scope_key

module Scope = struct
  type t = scope

  let make = make_scope
  let global = global_scope
  let current = current_scope

  let run s f =
    let prev = Domain.DLS.get scope_key in
    Domain.DLS.set scope_key s;
    Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key prev) f
end

let enabled () = Atomic.get (current_scope ()).on
let set_enabled b = Atomic.set (current_scope ()).on b

let counter name =
  let sc = current_scope () in
  match SMap.find_opt name (Atomic.get sc.registry) with
  | Some c -> c
  | None ->
    with_lock sc.registry_mu (fun () ->
        match SMap.find_opt name (Atomic.get sc.registry) with
        | Some c -> c
        | None ->
          let c = { name; count = 0; ns = 0 } in
          Atomic.set sc.registry (SMap.add name c (Atomic.get sc.registry));
          c)

let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let add_ns c n = c.ns <- c.ns + n

let record_max c n = if n > c.count then c.count <- n

let count c = c.count
let ns c = c.ns

(* [gettimeofday] quantises around ~200ns at current epoch values — fine
   for operator executions that cost microseconds and up.  The wall clock
   can step backwards (NTP adjustments), which would turn span and sampled
   durations negative and corrupt the ×64-scaled estimates, so readings are
   clamped against a global high-water mark: [now_ns] is non-decreasing
   across all domains. *)
let last_ns = Atomic.make 0

let push_ns t =
  let rec settle () =
    let seen = Atomic.get last_ns in
    if t <= seen then seen
    else if Atomic.compare_and_set last_ns seen t then t
    else settle ()
  in
  settle ()

let now_ns () = push_ns (int_of_float (Unix.gettimeofday () *. 1e9))

(* Advance the high-water mark without consulting the wall clock: the tested
   equivalent of an NTP step forward.  Deadline arithmetic built on [now_ns]
   must stay monotone under any such latch. *)
let advance_ns n = ignore (push_ns (Atomic.get last_ns + max 0 n))

let ms_of_ns n = float_of_int n /. 1e6

let count_of name =
  match SMap.find_opt name (Atomic.get (current_scope ()).registry) with
  | Some c -> c.count
  | None -> 0

let ms_of name =
  match SMap.find_opt name (Atomic.get (current_scope ()).registry) with
  | Some c -> ms_of_ns c.ns
  | None -> 0.0

let snapshot () =
  (* SMap.fold yields keys in order, so the rows come out name-sorted. *)
  SMap.fold
    (fun name c acc ->
      let n = c.count and t = c.ns in
      if n = 0 && t = 0 then acc else (name, n, ms_of_ns t) :: acc)
    (Atomic.get (current_scope ()).registry) []
  |> List.rev

(* --- closure wrappers (the only sanctioned way to instrument hot paths) ---

   Ticks cost one plain increment per call.  Wall-clock is sampled: the
   tick's previous value selects 1-in-64 calls for timing and the measured
   duration is scaled by 64, so the two clock reads — the expensive part,
   individual operator executions often cost less than the clock grain —
   amortise to ~1/64 of a call each.  Operator [ms] is therefore an
   estimate; [ticks] are exact on sequential runs and phase times always. *)

let sample_mask = 63 (* time calls where ticks land mask = 0, scale by mask+1 *)

let wrap1 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    fun x ->
      let k = c.count in
      c.count <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x in
        add_ns c (max 0 (now_ns () - t0) * (sample_mask + 1));
        r
      end
      else f x
  end

let wrap2 name f =
  if not (enabled ()) then f
  else begin
    let c = counter name in
    fun x y ->
      let k = c.count in
      c.count <- k + 1;
      if k land sample_mask = 0 then begin
        let t0 = now_ns () in
        let r = f x y in
        add_ns c (max 0 (now_ns () - t0) * (sample_mask + 1));
        r
      end
      else f x y
  end

(* --- current shard / trace thread id --------------------------------------

   Recording sites sit inside closures shared by every shard ([run_once],
   plan operators), so "which shard is this?" cannot be threaded as an
   argument without touching every signature on the hot path.  Instead
   [Eval.Pool] stamps the executing domain with the shard id of the task it
   is about to run; series points and trace events read it back.  Work
   stealing migrates *tasks* across domains, never a task mid-run, so the
   stamp is set per task, not per domain. *)

let tid_key = Domain.DLS.new_key (fun () -> 0)
let current_tid () = Domain.DLS.get tid_key
let set_tid t = Domain.DLS.set tid_key t

(* Wilson score interval at 95%: the sampler's running confidence band.
   Unlike the normal approximation it stays inside [0,1] and behaves at
   p-hat = 0/1, which early iterations always hit. *)
let wilson_interval ~hits ~total =
  if total <= 0 then (0.0, 1.0)
  else begin
    let z = 1.959963984540054 in
    let n = float_of_int total in
    let p = float_of_int hits /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let half = z *. sqrt (((p *. (1.0 -. p)) +. (z2 /. (4.0 *. n))) /. n) in
    (* The exact bounds at p-hat = 0 (lower) and 1 (upper) are 0 and 1;
       pin them so rounding noise cannot push the point estimate outside
       its own interval. *)
    let lo = if hits = 0 then 0.0 else Float.max 0.0 ((centre -. half) /. denom) in
    let hi = if hits = total then 1.0 else Float.min 1.0 ((centre +. half) /. denom) in
    (lo, hi)
  end

(* --- per-iteration time series --------------------------------------------- *)

module Series = struct
  let enabled_flag = Atomic.make false
  let enabled () = Atomic.get enabled_flag
  let set_enabled b = Atomic.set enabled_flag b

  (* Points arrive rarely — every k-th sample, once per BFS level, once per
     fixpoint step — so a mutex per append is cheap next to the work between
     appends; the hot-path discipline lives at the recording sites, which
     latch [enabled] at closure-build time. *)
  let capacity = 65536

  type buf = {
    name : string;
    shard : int;
    mutable points : (int * float) array;
    mutable len : int;
    mutable dropped : int;
  }

  let table : (string * int, buf) Hashtbl.t = Hashtbl.create 32
  let mu = Mutex.create ()

  type observer = name:string -> shard:int -> it:int -> float -> unit

  let no_observer : observer = fun ~name:_ ~shard:_ ~it:_ _ -> ()
  let observer = ref no_observer

  let set_observer f =
    with_lock mu (fun () -> observer := match f with Some f -> f | None -> no_observer)

  let add ?shard name ~it v =
    if enabled () then begin
      let shard = match shard with Some s -> s | None -> current_tid () in
      let notify =
        with_lock mu (fun () ->
            let key = (name, shard) in
            let b =
              match Hashtbl.find_opt table key with
              | Some b -> b
              | None ->
                let b = { name; shard; points = Array.make 64 (0, 0.0); len = 0; dropped = 0 } in
                Hashtbl.add table key b;
                b
            in
            (if b.len >= capacity then b.dropped <- b.dropped + 1
             else begin
               if b.len = Array.length b.points then begin
                 let bigger = Array.make (min capacity (2 * b.len)) (0, 0.0) in
                 Array.blit b.points 0 bigger 0 b.len;
                 b.points <- bigger
               end;
               b.points.(b.len) <- (it, v);
               b.len <- b.len + 1
             end);
            !observer)
      in
      (* Outside the lock: the observer may print, and a slow consumer must
         not serialise other shards' appends. *)
      notify ~name ~shard ~it v
    end

  (* Rows sorted by (name, shard): the merge is a pure function of what was
     recorded, whatever order shards finished in — which is what makes
     fixed-seed series identical at any domain count. *)
  let merged () =
    let rows =
      with_lock mu (fun () ->
          Hashtbl.fold (fun _ b acc -> (b.name, b.shard, Array.sub b.points 0 b.len) :: acc) table [])
    in
    rows
    |> List.sort (fun (n1, s1, _) (n2, s2, _) ->
           match String.compare n1 n2 with 0 -> Int.compare s1 s2 | c -> c)
    |> List.map (fun (name, shard, pts) -> (name, shard, Array.to_list pts))

  let counts () =
    let totals =
      List.fold_left
        (fun acc (name, _, pts) ->
          let n = List.length pts in
          match SMap.find_opt name acc with
          | Some m -> SMap.add name (m + n) acc
          | None -> SMap.add name n acc)
        SMap.empty (merged ())
    in
    SMap.bindings totals

  let dropped () =
    with_lock mu (fun () -> Hashtbl.fold (fun _ b acc -> acc + b.dropped) table 0)

  let reset () = with_lock mu (fun () -> Hashtbl.reset table)

  let json () =
    Json.Obj
      [ ("schema", Json.Str "probdb.series/1");
        ( "series",
          Json.List
            (List.map
               (fun (name, shard, pts) ->
                 Json.Obj
                   [ ("name", Json.Str name);
                     ("shard", Json.Int shard);
                     ( "points",
                       Json.List
                         (List.map (fun (it, v) -> Json.List [ Json.Int it; Json.Float v ]) pts)
                     )
                   ])
               (merged ())) );
        ("dropped", Json.Int (dropped ()))
      ]

  let write path = Json.to_file path (json ())
end

(* --- trace events ----------------------------------------------------------- *)

module Trace = struct
  let enabled_flag = Atomic.make false
  let enabled () = Atomic.get enabled_flag
  let set_enabled b = Atomic.set enabled_flag b

  type event = {
    ph : char; (* 'B' | 'E' | 'X' | 'i' *)
    name : string;
    ts : int; (* ns since the trace epoch ([reset] time) *)
    dur : int; (* ns; complete ('X') events only *)
    tid : int;
    args : (string * int) list;
  }

  (* Timestamps are rebased to the epoch taken at [reset]: Chrome trace [ts]
     is microseconds and must survive a float round-trip in viewers, so
     epoch-sized values (~1.7e15 µs) would lose their low bits — run-relative
     ones fit comfortably. *)
  let epoch = Atomic.make 0

  let capacity = 65536

  type buf = {
    tid : int;
    events : event array;
    mutable len : int;
    mutable dropped : int;
  }

  let dummy = { ph = 'i'; name = ""; ts = 0; dur = 0; tid = 0; args = [] }

  (* One buffer per tid, looked up through an atomically published array:
     the append path is a bounds check, a load and two plain writes — no
     lock, because a tid's buffer has a single writer (the domain running
     that shard's task; flushes happen after the joins).  The mutex only
     guards growing the array and creating buffers. *)
  let bufs : buf option array Atomic.t = Atomic.make [||]
  let bufs_mu = Mutex.create ()

  let install tid =
    with_lock bufs_mu (fun () ->
        let a = Atomic.get bufs in
        let a =
          if tid < Array.length a then a
          else begin
            let bigger = Array.make (max (tid + 1) (2 * max 1 (Array.length a))) None in
            Array.blit a 0 bigger 0 (Array.length a);
            bigger
          end
        in
        match a.(tid) with
        | Some b ->
          Atomic.set bufs a;
          b
        | None ->
          let b = { tid; events = Array.make capacity dummy; len = 0; dropped = 0 } in
          a.(tid) <- Some b;
          Atomic.set bufs a;
          b)

  let buffer tid =
    let a = Atomic.get bufs in
    if tid < Array.length a then match a.(tid) with Some b -> b | None -> install tid
    else install tid

  let record (ev : event) =
    let b = buffer ev.tid in
    (* Full buffers drop the *new* event and count it, instead of
       overwriting old ones: destructive wrap-around would orphan the E of
       any span whose B it ate, and a trace that silently loses its oldest
       spans misleads more than one that reports how much it dropped. *)
    if b.len >= capacity then b.dropped <- b.dropped + 1
    else begin
      b.events.(b.len) <- ev;
      b.len <- b.len + 1
    end

  let ts_of t = max 0 (t - Atomic.get epoch)

  let instant ?(args = []) ?tid name =
    if enabled () then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record { ph = 'i'; name; ts = ts_of (now_ns ()); dur = 0; tid; args }
    end

  let begin_span ?(args = []) ?tid name =
    if enabled () then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record { ph = 'B'; name; ts = ts_of (now_ns ()); dur = 0; tid; args }
    end

  let end_span ?tid name =
    if enabled () then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record { ph = 'E'; name; ts = ts_of (now_ns ()); dur = 0; tid; args = [] }
    end

  (* [t0] is an absolute [now_ns] reading; the duration is clamped like
     every other delta so a clock step cannot produce a negative span. *)
  let complete ?(args = []) ?tid ~t0 ~dur name =
    if enabled () then begin
      let tid = match tid with Some t -> t | None -> current_tid () in
      record { ph = 'X'; name; ts = ts_of t0; dur = max 0 dur; tid; args }
    end

  let with_span ?(args = []) name f =
    if not (enabled ()) then f ()
    else begin
      let t0 = now_ns () in
      Fun.protect ~finally:(fun () -> complete ~args ~t0 ~dur:(now_ns () - t0) name) f
    end

  let events () =
    let a = Atomic.get bufs in
    let acc = ref [] in
    for t = Array.length a - 1 downto 0 do
      match a.(t) with
      | None -> ()
      | Some b ->
        (* Recording order is completion order, and a complete ('X') event
           carries its *start* timestamp — so a long span recorded after a
           short one would read out of order.  A stable per-tid sort by ts
           restores the timeline while leaving same-instant events (B/E
           pairs from back-to-back spans) in recording order. *)
        let tid_events = Array.sub b.events 0 b.len in
        let keyed = Array.mapi (fun i e -> (e.ts, i, e)) tid_events in
        Array.sort (fun (ts, i, _) (ts', i', _) -> Stdlib.compare (ts, i) (ts', i')) keyed;
        for i = Array.length keyed - 1 downto 0 do
          let _, _, e = keyed.(i) in
          acc := e :: !acc
        done
    done;
    !acc

  let dropped () =
    Array.fold_left
      (fun acc -> function None -> acc | Some b -> acc + b.dropped)
      0 (Atomic.get bufs)

  let reset () =
    with_lock bufs_mu (fun () -> Atomic.set bufs [||]);
    Atomic.set epoch (now_ns ())

  (* Chrome trace-event JSON.  [ts]/[dur] are integer microseconds (the
     format's unit); [pid] and [tid] both carry the shard id, so Perfetto
     groups one track per shard. *)
  let json_of_event e =
    let base =
      [ ("name", Json.Str e.name);
        ("ph", Json.Str (String.make 1 e.ph));
        ("ts", Json.Int (e.ts / 1000));
        ("pid", Json.Int e.tid);
        ("tid", Json.Int e.tid)
      ]
    in
    let dur = if e.ph = 'X' then [ ("dur", Json.Int (max 0 e.dur / 1000)) ] else [] in
    let scope = if e.ph = 'i' then [ ("s", Json.Str "t") ] else [] in
    let args =
      if e.args = [] then []
      else [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) e.args)) ]
    in
    Json.Obj (base @ dur @ scope @ args)

  (* Extra top-level keys are legal in the trace format (viewers ignore the
     ones they do not know), so the per-iteration series ride along in the
     same file: one artifact per run. *)
  let json () =
    Json.Obj
      [ ("traceEvents", Json.List (List.map json_of_event (events ())));
        ("displayTimeUnit", Json.Str "ms");
        ("series", Series.json ());
        ("dropped", Json.Int (dropped ()))
      ]

  let write path = Json.to_file path (json ())
end

(* --- phases --------------------------------------------------------------- *)

let add_phase name ms =
  let sc = current_scope () in
  with_lock sc.phase_mu (fun () ->
      let rec bump = function
        | [] -> [ (name, ms) ]
        | (n, acc) :: rest when String.equal n name -> (n, acc +. ms) :: rest
        | row :: rest -> row :: bump rest
      in
      sc.phase_rows <- bump sc.phase_rows)

(* Phases double as trace spans: a run with tracing but no [--stats] still
   gets its compile/evaluate/sample slices. *)
let phase name f =
  let on = enabled () in
  let tr = Trace.enabled () in
  if not (on || tr) then f ()
  else begin
    let t0 = now_ns () in
    let finally () =
      let dur = max 0 (now_ns () - t0) in
      if on then add_phase name (ms_of_ns dur);
      if tr then Trace.complete ~t0 ~dur name
    in
    Fun.protect ~finally f
  end

let phases () =
  let sc = current_scope () in
  with_lock sc.phase_mu (fun () -> sc.phase_rows)

(* --- shard table ----------------------------------------------------------- *)

let record_shard s =
  let sc = current_scope () in
  with_lock sc.shard_mu (fun () -> sc.shard_rows <- s :: sc.shard_rows)

let shards () =
  let sc = current_scope () in
  List.sort
    (fun a b -> Int.compare a.shard b.shard)
    (with_lock sc.shard_mu (fun () -> sc.shard_rows))

(* --- reset ----------------------------------------------------------------- *)

let reset () =
  let sc = current_scope () in
  SMap.iter
    (fun _ c ->
      c.count <- 0;
      c.ns <- 0)
    (Atomic.get sc.registry);
  with_lock sc.phase_mu (fun () -> sc.phase_rows <- []);
  with_lock sc.shard_mu (fun () -> sc.shard_rows <- [])
