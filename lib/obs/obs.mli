(** Zero-cost-when-off observability: named monotonic counters with
    accumulated wall-clock time, a per-run phase table, a per-shard sampling
    table, per-iteration time series ({!Series}), a span/instant recorder
    flushed to Chrome trace-event JSON ({!Trace}), mergeable log-bucketed
    histograms ({!Hist}) and leveled structured JSON logging ({!Log}).

    Contract: instrumentation sites consult {!enabled} (or
    {!Trace.enabled}/{!Series.enabled}/{!Log.enabled}) once when they build
    their closures (plan compilation, chain construction, pool task
    creation) or once per top-level operation — never per tuple inside a
    hot loop.  With everything disabled the executed closures are exactly
    the uninstrumented ones.  Counter updates are plain word-sized writes
    into a per-(scope, domain) cell lane, so concurrent {!Eval.Pool}
    workers never contend and never lose increments; readers merge the
    lanes on demand, so {!snapshot} is exact once the writers have
    quiesced (joined or synchronised — every reporting path).  The phase
    and shard tables are mutex-protected and always exact. *)

type counter

(** Scoped stats: counters, the phase table, the shard table, {!Series}
    buffers and {!Trace} buffers all live in a scope, so a resident server
    can give each request its own registry and report per-tenant stats,
    series and spans exactly — one session's ticks or spans never bleed
    into another's.  The default is a process-global scope (every CLI path
    is unchanged); the current scope is domain-local ([Domain.DLS]), so
    entering a scope on one domain never disturbs another.  {!Eval.Pool}
    workers enter the caller's scope for the duration of each task, so
    parallel evaluation records into the scope of the request that spawned
    it. *)
module Scope : sig
  type t

  val make : unit -> t
  (** A fresh scope: stats/series/trace disabled, empty tables and
      buffers, trace epoch based at creation time. *)

  val global : t
  (** The process-global default scope every domain starts in. *)

  val current : unit -> t

  val run : t -> (unit -> 'a) -> 'a
  (** Runs the thunk with [t] as the executing domain's current scope,
      restoring the previous scope on exit (also on exception). *)
end

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Stats switch of the {e current} scope. *)

val counter : string -> counter
(** Registers (or finds) the counter named [name] in the current scope.
    The returned handle stays bound to that scope wherever it is later
    incremented from.  Counters persist across {!reset}, which only zeroes
    them. *)

val incr : counter -> unit
val add : counter -> int -> unit
val add_ns : counter -> int -> unit

val record_max : counter -> int -> unit
(** Raises the counter's count to [n] if it is currently smaller (per-lane
    max, merged with max across lanes — for high-water marks like frontier
    size). *)

val count : counter -> int
val ns : counter -> int

val now_ns : unit -> int
(** Wall-clock nanoseconds ([Unix.gettimeofday]-backed; ~200ns grain),
    clamped against a global high-water mark so readings never decrease —
    an NTP step backwards repeats the last reading instead of producing
    negative durations downstream.  All budget arithmetic ([Guard]
    deadlines, spans, sampled operator timings) reads this clock, never
    [gettimeofday] directly. *)

val advance_ns : int -> unit
(** Pushes the {!now_ns} high-water mark forward by [n] nanoseconds without
    consulting the wall clock — the tested equivalent of an NTP step
    forward.  Negative [n] is ignored (the clock is monotone). *)

val ms_of_ns : int -> float

val count_of : string -> int
(** Count of the named counter, [0] if never registered. *)

val ms_of : string -> float
(** Accumulated milliseconds of the named counter, [0.] if never
    registered. *)

val snapshot : unit -> (string * int * float) list
(** All counters with activity, sorted by name: (name, count, ms). *)

val wrap1 : string -> ('a -> 'b) -> 'a -> 'b
(** [wrap1 name f]: when stats are enabled at wrap time, a closure that
    counts one tick per application under [name] and estimates wall time by
    sampling — 1-in-64 applications (per lane) are clocked and scaled by
    64, so the reported [ms] is a statistical estimate while [ticks] stays
    exact; when disabled, [f] itself (no branch, no indirection beyond the
    original closure). *)

val wrap2 : string -> ('a -> 'b -> 'c) -> 'a -> 'b -> 'c

val current_tid : unit -> int
(** The executing domain's current shard id (domain-local, default [0]).
    {!Eval.Pool} stamps it per task; {!Series.add} and {!Trace} events use
    it as their default shard/track. *)

val set_tid : int -> unit

val wilson_interval : hits:int -> total:int -> float * float
(** 95% Wilson score interval for [hits] successes in [total] trials —
    always within [[0,1]], sensible at 0 and [total] hits; [(0., 1.)] when
    [total <= 0]. *)

(** Minimal JSON emitter for the stats reports ([--stats-json] in [probdl]
    and [probmc]), trace files, series dumps, metrics documents and log
    lines. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val to_file : string -> t -> unit
  (** Writes [to_string] plus a trailing newline to [path]. *)
end

(** Mergeable log-bucketed histograms over non-negative integer
    observations (latency nanoseconds, sizes).  Every histogram shares one
    fixed geometric bucket grid — upper bounds grow by [2^(1/4)] (~19%)
    from 1, with a terminal [+Inf] overflow bucket — so {!Hist.merge} is
    element-wise addition of bucket counts: exact, and independent of how
    the observations were sharded across domains.  A histogram is plain
    mutable state with no internal lock: callers serialise writers (the
    daemon records under its telemetry mutex; tests merge after joins). *)
module Hist : sig
  type t

  val make : unit -> t

  val observe : t -> int -> unit
  (** Records one observation; negative values clamp to 0. *)

  val total : t -> int
  (** Number of observations. *)

  val sum : t -> int
  (** Sum of (clamped) observations — exact, not bucket-approximated. *)

  val merge : t -> t -> t
  (** A fresh histogram holding both operands' observations.  Because the
      bucket grid is a program constant, [merge a b] has exactly the
      bucket counts of a histogram fed the concatenated observation
      streams, at any sharding. *)

  val quantile : t -> float -> int
  (** [quantile t q] for [q] in [[0,1]]: the upper bound of the bucket
      containing the observation of rank [ceil (q * total)] — within one
      bucket width (a factor [2^(1/4)]) above the true order statistic.
      [0] when empty; observations past the last finite bound report the
      last finite bound. *)

  val cumulative : t -> (int option * int) list
  (** Cumulative bucket counts in increasing bound order, one entry per
      non-empty bucket: [(Some upper_bound, cum)], terminated by the
      [+Inf] entry [(None, total)] which is always present.  Cumulative
      counts are monotone by construction — the Prometheus [_bucket]
      rendering is a direct transcription. *)

  val equal : t -> t -> bool
end

(** Named append-only per-iteration time series: (iteration, value) points
    keyed by (series name, shard), living in the {e current scope}.
    Recording is mutex-protected (points arrive rarely — every k-th
    sample, once per BFS level or fixpoint step); sites latch
    {!Series.enabled} at closure-build time so the disabled path stays the
    uninstrumented one.  Buffers cap at 65536 points per (name, shard) and
    count drops beyond that. *)
module Series : sig
  val enabled : unit -> bool
  val set_enabled : bool -> unit

  val add : ?shard:int -> string -> it:int -> float -> unit
  (** Appends a point to series [name] under [shard] (default
      {!current_tid}).  No-op when disabled. *)

  type observer = name:string -> shard:int -> it:int -> float -> unit

  val set_observer : observer option -> unit
  (** Installs (or clears) a callback in the current scope invoked after
      every recorded point — the live [--progress] hook.  Called outside
      the series lock, possibly from worker domains concurrently: the
      observer must be thread-safe. *)

  val merged : unit -> (string * int * (int * float) list) list
  (** All series sorted by (name, shard), each shard's points in recording
      order — a pure function of what was recorded, independent of domain
      count and scheduling for fixed-seed runs. *)

  val counts : unit -> (string * int) list
  (** Total recorded points per series name, name-sorted (the stats
      summary block). *)

  val dropped : unit -> int
  val reset : unit -> unit

  val json : unit -> Json.t
  (** Schema [probdb.series/1]: [{schema; series: [{name; shard; points:
      [[it, v], ...]}]; dropped}]. *)

  val write : string -> unit
end

(** Span/instant event recorder flushed to Chrome trace-event JSON loadable
    in Perfetto or [chrome://tracing].  Buffers live in the {e current
    scope}, so a per-request scope yields a tenant-clean trace: two
    concurrent daemon sessions never interleave into one buffer.  Appends
    take no lock: one bounded buffer per (scope, tid), single writer (the
    domain running that shard's task).  Full buffers drop new events and
    count them rather than overwrite — recorded spans stay balanced.
    Timestamps are {!now_ns} readings rebased to the scope's epoch (its
    creation time, or the last {!Trace.reset}). *)
module Trace : sig
  val enabled : unit -> bool
  val set_enabled : bool -> unit

  type event = {
    ph : char;  (** ['B'] | ['E'] | ['X'] | ['i'] *)
    name : string;
    ts : int;  (** ns since the scope's trace epoch *)
    dur : int;  (** ns; complete (['X']) events only *)
    tid : int;
    args : (string * int) list;
  }

  val instant : ?args:(string * int) list -> ?tid:int -> string -> unit
  val begin_span : ?args:(string * int) list -> ?tid:int -> string -> unit
  val end_span : ?tid:int -> string -> unit

  val complete : ?args:(string * int) list -> ?tid:int -> t0:int -> dur:int -> string -> unit
  (** One 'X' (complete) event: [t0] an absolute {!now_ns} reading, [dur]
      clamped at 0. *)

  val with_span : ?args:(string * int) list -> string -> (unit -> 'a) -> 'a
  (** Runs the thunk inside a complete span when enabled, just runs it when
      disabled. *)

  val events : unit -> event list
  (** Everything recorded in the current scope, grouped by tid ascending,
      each tid's events stably sorted by [ts] (complete events are
      recorded at completion but stamped with their start time) — hence
      ts-monotone per tid. *)

  val dropped : unit -> int

  val reset : unit -> unit
  (** Clears the current scope's buffers and re-bases its epoch at the
      current clock. *)

  val json : unit -> Json.t
  (** Chrome trace-event JSON: [{"traceEvents": [...], ...}] with integer
      microsecond [ts]/[dur] and [pid] = [tid] = shard id; the current
      {!Series.json} document rides along under the ["series"] key (viewers
      ignore unknown top-level keys). *)

  val write : string -> unit
end

(** Leveled structured JSON logging.  Off by default: no sink, zero cost —
    sites latch {!Log.enabled} like every other plane switch.  A sink is
    process-global (one log stream per daemon); each call emits a single
    JSON line [{"ts"; "ts_ns"; "level"; "event"; ...fields}] under a mutex
    so concurrent session domains never interleave bytes.  [probdbd
    --log-json] installs a stderr sink and stamps every line with the
    request's correlation id. *)
module Log : sig
  type level = Debug | Info | Warn | Error

  val slug : level -> string
  (** ["debug"] | ["info"] | ["warn"] | ["error"]. *)

  val set_sink : ?level:level -> (string -> unit) option -> unit
  (** Installs (or clears, with [None]) the process-global sink; lines at
      or above [level] (default [Info]) are emitted.  The emit function
      receives one complete JSON line without the trailing newline. *)

  val enabled : level -> bool
  (** Whether a line at [level] would be emitted — latch this at
      closure-build time on hot paths. *)

  val log : level -> string -> (string * Json.t) list -> unit
  (** [log level event fields] emits [{"ts"; "ts_ns"; "level"; "event";
      ...fields}].  No-op without a sink or below its level. *)
end

val phase : string -> (unit -> 'a) -> 'a
(** Times the thunk into the phase table when stats are enabled
    (accumulating over same-named phases) and emits a complete trace span
    when tracing is enabled; just runs it when both are off. *)

val phases : unit -> (string * float) list
(** Phase table in first-recorded order: (name, ms). *)

type shard = {
  shard : int;
  samples : int;
  hits : int;
  ms : float;
}

val record_shard : shard -> unit
val shards : unit -> shard list
(** Shard table sorted by shard id. *)

val reset : unit -> unit
(** Zeroes every counter and clears the phase and shard tables.
    {!Trace.reset} and {!Series.reset} are separate: a CLI enables and
    flushes them across a whole multi-event run. *)
