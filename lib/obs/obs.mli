(** Zero-cost-when-off observability: named monotonic counters with
    accumulated wall-clock time, a per-run phase table, and a per-shard
    sampling table.

    Contract: instrumentation sites consult {!enabled} once when they build
    their closures (plan compilation, chain construction, pool task
    creation) or once per top-level operation — never per tuple inside a hot
    loop.  With stats disabled the executed closures are exactly the
    uninstrumented ones.  Counter updates are plain word-sized writes —
    tear-free and monotonic, exact on sequential runs, but concurrent
    updates from {!Eval.Pool} workers may lose the odd increment (an atomic
    RMW per operator call would cost more than the operators it measures).
    The phase and shard tables are mutex-protected and always exact. *)

type counter

val enabled : unit -> bool
val set_enabled : bool -> unit

val counter : string -> counter
(** Registers (or finds) the counter named [name].  Counters persist across
    {!reset}, which only zeroes them. *)

val incr : counter -> unit
val add : counter -> int -> unit
val add_ns : counter -> int -> unit

val record_max : counter -> int -> unit
(** Raises the counter's count to [n] if it is currently smaller (atomic
    max, for high-water marks like frontier size). *)

val count : counter -> int
val ns : counter -> int

val now_ns : unit -> int
(** Wall-clock nanoseconds ([Unix.gettimeofday]-backed; ~200ns grain). *)

val ms_of_ns : int -> float

val count_of : string -> int
(** Count of the named counter, [0] if never registered. *)

val ms_of : string -> float
(** Accumulated milliseconds of the named counter, [0.] if never
    registered. *)

val snapshot : unit -> (string * int * float) list
(** All counters with activity, sorted by name: (name, count, ms). *)

val wrap1 : string -> ('a -> 'b) -> 'a -> 'b
(** [wrap1 name f]: when stats are enabled at wrap time, a closure that
    counts one tick per application under [name] and estimates wall time by
    sampling — 1-in-64 applications are clocked and scaled by 64, so the
    reported [ms] is a statistical estimate while [ticks] stays exact; when
    disabled, [f] itself (no branch, no indirection beyond the original
    closure). *)

val wrap2 : string -> ('a -> 'b -> 'c) -> 'a -> 'b -> 'c

val phase : string -> (unit -> 'a) -> 'a
(** Times the thunk into the phase table when enabled (accumulating over
    same-named phases), just runs it when disabled. *)

val phases : unit -> (string * float) list
(** Phase table in first-recorded order: (name, ms). *)

type shard = {
  shard : int;
  samples : int;
  hits : int;
  ms : float;
}

val record_shard : shard -> unit
val shards : unit -> shard list
(** Shard table sorted by shard id. *)

val reset : unit -> unit
(** Zeroes every counter and clears the phase and shard tables. *)

(** Minimal JSON emitter for the stats reports ([--stats-json] in [probdl]
    and [probmc]). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
end
