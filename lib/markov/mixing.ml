module Q = Bigq.Q

let step_q chain pi =
  let n = Chain.num_states chain in
  let next = Array.make n Q.zero in
  Array.iteri
    (fun i w ->
      if not (Q.is_zero w) then
        List.iter (fun (j, p) -> next.(j) <- Q.add next.(j) (Q.mul w p)) (Chain.succ chain i))
    pi;
  next

let evolve chain pi t =
  let rec go pi k = if k = 0 then pi else go (step_q chain pi) (k - 1) in
  go pi t

let tv_distance a b =
  let acc = ref Q.zero in
  Array.iteri (fun i x -> acc := Q.add !acc (Q.abs (Q.sub x b.(i)))) a;
  Q.mul Q.half !acc

let point n i = Array.init n (fun j -> if i = j then Q.one else Q.zero)

let max_tv_at chain pi t =
  let n = Chain.num_states chain in
  List.fold_left
    (fun acc i -> Q.max acc (tv_distance (evolve chain (point n i) t) pi))
    Q.zero
    (List.init n Fun.id)

(* Float machinery for the searches. *)
let float_rows chain =
  Array.init (Chain.num_states chain) (fun i ->
      List.map (fun (j, p) -> (j, Q.to_float p)) (Chain.succ chain i))

let step_f rows v =
  let next = Array.make (Array.length v) 0.0 in
  Array.iteri (fun i w -> if w > 0.0 then List.iter (fun (j, p) -> next.(j) <- next.(j) +. (w *. p)) rows.(i)) v;
  next

let tv_f a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. abs_float (x -. b.(i))) a;
  0.5 *. !acc

let mixing_search_float ?(max_steps = 100_000) ~eps chain starts =
  if not (Classify.is_ergodic chain) then None
  else begin
    let n = Chain.num_states chain in
    let rows = float_rows chain in
    let pi = Array.map Q.to_float (Stationary.exact chain) in
    let dists = ref (List.map (fun s -> Array.init n (fun j -> if j = s then 1.0 else 0.0)) starts) in
    let rec go t =
      if List.for_all (fun v -> tv_f v pi < eps) !dists then Some t
      else if t >= max_steps then None
      else begin
        dists := List.map (step_f rows) !dists;
        go (t + 1)
      end
    in
    go 0
  end

(* The float search is only a guess: rounding in [step_f]/[tv_f] can put the
   computed TV on the wrong side of ε when the true distance sits within a
   few ulps of it.  Certify the candidate with exact arithmetic over [Q] —
   comparing against the float ε's exact rational value — and keep stepping
   if the float search undershot. *)
let mixing_search ?(max_steps = 100_000) ~eps chain starts =
  match mixing_search_float ~max_steps ~eps chain starts with
  | None -> None
  | Some t0 ->
    let n = Chain.num_states chain in
    let pi = Stationary.exact chain in
    let eps_q = Q.of_float eps in
    let dists = ref (List.map (fun s -> evolve chain (point n s) t0) starts) in
    let mixed () = List.for_all (fun v -> Q.compare (tv_distance v pi) eps_q < 0) !dists in
    let rec go t =
      if mixed () then Some t
      else if t >= max_steps then None
      else begin
        dists := List.map (step_q chain) !dists;
        go (t + 1)
      end
    in
    go t0

let mixing_time ?max_steps ~eps chain =
  mixing_search ?max_steps ~eps chain (List.init (Chain.num_states chain) Fun.id)

let mixing_time_from ?max_steps ~eps chain ~start = mixing_search ?max_steps ~eps chain [ start ]

let mixing_time_float ?max_steps ~eps chain =
  mixing_search_float ?max_steps ~eps chain (List.init (Chain.num_states chain) Fun.id)
