let step rng chain s = Prob.Dist.sample rng (Chain.row_dist chain s)

(* One RNG draw per step; counted once per walk, not per step. *)
let steps_c = Obs.counter "walk.steps"

let run rng chain ~start ~steps =
  if Obs.enabled () then Obs.add steps_c steps;
  let rec go acc s k = if k = 0 then List.rev (s :: acc) else go (s :: acc) (step rng chain s) (k - 1) in
  go [] start steps

let end_state rng chain ~start ~steps =
  if Obs.enabled () then Obs.add steps_c steps;
  let rec go s k = if k = 0 then s else go (step rng chain s) (k - 1) in
  go start steps

let occupation rng chain ~start ~steps =
  let counts = Array.make (Chain.num_states chain) 0 in
  let rec go s k =
    counts.(s) <- counts.(s) + 1;
    if k > 0 then go (step rng chain s) (k - 1)
  in
  go start steps;
  let total = float_of_int (steps + 1) in
  Array.map (fun c -> float_of_int c /. total) counts

let estimate_stationary rng chain ~start ~burn_in ~samples ~thin =
  let counts = Array.make (Chain.num_states chain) 0 in
  let s = ref (end_state rng chain ~start ~steps:burn_in) in
  for _ = 1 to samples do
    counts.(!s) <- counts.(!s) + 1;
    s := end_state rng chain ~start:!s ~steps:(max 1 thin)
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts
