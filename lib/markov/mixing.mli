(** Mixing time (Section 2.3): the number of steps after which the walk's
    distribution is within ε of stationary regardless of the start state. *)

val evolve : 'a Chain.t -> Bigq.Q.t array -> int -> Bigq.Q.t array
(** [evolve chain pi t] is the exact distribution after [t] steps. *)

val tv_distance : Bigq.Q.t array -> Bigq.Q.t array -> Bigq.Q.t
(** Total-variation distance between two distribution vectors. *)

val max_tv_at : 'a Chain.t -> Bigq.Q.t array -> int -> Bigq.Q.t
(** [max_tv_at chain pi t]: worst-case (over start states) total-variation
    distance between the [t]-step distribution and [pi]. *)

val mixing_time : ?max_steps:int -> eps:float -> 'a Chain.t -> int option
(** Smallest certified [t] with [max_tv_at chain π t < eps], where π is the
    exact stationary distribution.  A float-vector search finds the
    candidate fast; the answer is then certified with exact arithmetic over
    [Q] against the exact rational value of [eps], advancing [t] when float
    rounding made the search undershoot.  [None] when [max_steps] (default
    100000) is reached first, or when the chain is not ergodic. *)

val mixing_time_from : ?max_steps:int -> eps:float -> 'a Chain.t -> start:int -> int option
(** Like {!mixing_time} but from a single start state. *)

val mixing_time_float : ?max_steps:int -> eps:float -> 'a Chain.t -> int option
(** The uncertified float-only search (the pre-certification behaviour),
    kept as an ablation baseline: near the ε threshold it can return a [t]
    the exact chain does not satisfy. *)
