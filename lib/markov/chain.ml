module Q = Bigq.Q
module Dist = Prob.Dist

type 'a t = {
  labels : 'a array;
  rows : (int * Q.t) list array;
  find : 'a -> int option;
}

exception Chain_error of string

let err fmt = Format.kasprintf (fun s -> raise (Chain_error s)) fmt

let check_row n i row =
  let total = Q.sum (List.map snd row) in
  if not (Q.is_one total) then err "row %d sums to %s, not 1" i (Q.to_string total);
  List.iter
    (fun (j, p) ->
      if j < 0 || j >= n then err "row %d targets invalid state %d" i j;
      if Q.sign p <= 0 then err "row %d has non-positive probability" i)
    row

let of_rows ?(equal = fun a b -> a = b) ?(hash = Hashtbl.hash) labels rows =
  let n = Array.length labels in
  if Array.length rows <> n then err "labels/rows length mismatch";
  Array.iteri (check_row n) rows;
  (* Hashed lookup rather than an O(n) scan with polymorphic equality (which
     mis-compares labels carrying caches or abstract internals).  [hash] must
     agree with [equal]; equal labels then share a bucket, and on duplicates
     the first index wins, matching the old scan. *)
  let size = max 16 (2 * n) in
  let buckets = Array.make size [] in
  let slot l = hash l land max_int mod size in
  Array.iteri
    (fun i l ->
      let b = slot l in
      if not (List.exists (fun (l', _) -> equal l' l) buckets.(b)) then
        buckets.(b) <- (l, i) :: buckets.(b))
    labels;
  let find l =
    List.find_map (fun (l', i) -> if equal l' l then Some i else None) buckets.(slot l)
  in
  { labels; rows; find }

(* Exploration stats.  [obs] is latched once per construction; the check
   inside the BFS loop is per expanded state (one branch per [step] call,
   which itself evaluates a whole query) — never per tuple. *)
let expanded_c = Obs.counter "chain.expanded"
let states_c = Obs.counter "chain.states"
let edges_c = Obs.counter "chain.edges"
let frontier_c = Obs.counter "chain.frontier_max"

let of_step (type a) ~(hash : a -> int) ~(equal : a -> a -> bool) ?max_states
    ?(guard = Guard.unlimited) ~(init : a list) ~(step : a -> a Dist.t) () =
  let module H = Hashtbl.Make (struct
    type t = a

    let equal = equal
    let hash = hash
  end) in
  let index : int H.t = H.create 256 in
  let states : a option array ref = ref (Array.make 16 None) in
  let count = ref 0 in
  let push s =
    if !count = Array.length !states then begin
      let bigger = Array.make (2 * !count) None in
      Array.blit !states 0 bigger 0 !count;
      states := bigger
    end;
    !states.(!count) <- Some s;
    incr count
  in
  (* Budget checks follow the [obs] latching: [gtick]/[gstop] are [None]
     for the default unlimited guard, so the governed-off loop is the
     unguarded one.  [gtick] is charged per fresh intern (where [max_states]
     already checks), [gstop] polled per expanded state so deadlines and
     interrupts fire even when exploration stops discovering new states. *)
  let gtick = Guard.state_tick guard in
  let gstop = Guard.stop_check guard in
  (* Interning costs one hash + an expected O(1) bucket probe instead of the
     O(log n) full-state comparisons of a Map, so exploring an n-state chain
     is O(n * out-degree) expected. *)
  let intern s =
    match H.find_opt index s with
    | Some i -> (i, false)
    | None ->
      let i = !count in
      (match max_states with
       | Some m when i >= m -> err "state space exceeds max_states = %d" m
       | _ -> ());
      (match gtick with Some tick -> tick () | None -> ());
      H.add index s i;
      push s;
      (i, true)
  in
  let get i = match !states.(i) with Some s -> s | None -> assert false in
  let obs = Obs.enabled () in
  (* Per-level telemetry is latched like [obs]: one extra branch per popped
     state when something is recording, zero when not.  BFS levels are
     tracked by counting down how many pops remain in the current level —
     when the countdown hits zero, everything now queued is the next
     level's frontier. *)
  let ser = Obs.Series.enabled () in
  let trc = Obs.Trace.enabled () in
  let track = ser || trc in
  let level = ref 0 in
  let remaining = ref 0 in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add (fst (intern s)) queue) init;
  if track then remaining := Queue.length queue;
  let rows = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    (match gstop with Some check -> check () | None -> ());
    if not (Hashtbl.mem rows i) then begin
      let d = step (get i) in
      let row =
        List.map
          (fun (s', p) ->
            let j, fresh = intern s' in
            if fresh then Queue.add j queue;
            (j, p))
          (Dist.support d)
      in
      Hashtbl.replace rows i row;
      if obs then begin
        Obs.incr expanded_c;
        Obs.add edges_c (List.length row);
        Obs.record_max frontier_c (Queue.length queue)
      end
    end;
    if track then begin
      decr remaining;
      if !remaining = 0 then begin
        let frontier = Queue.length queue in
        if ser then begin
          Obs.Series.add "chain.frontier" ~it:!level (float_of_int frontier);
          Obs.Series.add "chain.states" ~it:!level (float_of_int !count)
        end;
        if trc then
          Obs.Trace.instant "chain.level"
            ~args:[ ("level", !level); ("frontier", frontier); ("states", !count) ];
        incr level;
        remaining := frontier
      end
    end
  done;
  let n = !count in
  if obs then Obs.add states_c n;
  let labels = Array.init n get in
  let rows =
    Array.init n (fun i ->
        match Hashtbl.find_opt rows i with Some r -> r | None -> [ (i, Q.one) ])
  in
  Array.iteri (check_row n) rows;
  { labels; rows; find = (fun l -> H.find_opt index l) }

(* Map-based interning, kept as the ablation baseline for the hashed intern
   table (bench E19) and for label types with an order but no cheap hash. *)
let of_step_ordered (type a) ~(compare : a -> a -> int) ?max_states ~(init : a list)
    ~(step : a -> a Dist.t) () =
  let module M = Map.Make (struct
    type t = a

    let compare = compare
  end) in
  let index = ref M.empty in
  let states : a option array ref = ref (Array.make 16 None) in
  let count = ref 0 in
  let push s =
    if !count = Array.length !states then begin
      let bigger = Array.make (2 * !count) None in
      Array.blit !states 0 bigger 0 !count;
      states := bigger
    end;
    !states.(!count) <- Some s;
    incr count
  in
  let intern s =
    match M.find_opt s !index with
    | Some i -> (i, false)
    | None ->
      let i = !count in
      (match max_states with
       | Some m when i >= m -> err "state space exceeds max_states = %d" m
       | _ -> ());
      index := M.add s i !index;
      push s;
      (i, true)
  in
  let get i = match !states.(i) with Some s -> s | None -> assert false in
  let queue = Queue.create () in
  List.iter (fun s -> Queue.add (fst (intern s)) queue) init;
  let rows = Hashtbl.create 64 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    if not (Hashtbl.mem rows i) then begin
      let d = step (get i) in
      let row =
        List.map
          (fun (s', p) ->
            let j, fresh = intern s' in
            if fresh then Queue.add j queue;
            (j, p))
          (Dist.support d)
      in
      Hashtbl.replace rows i row
    end
  done;
  let n = !count in
  let labels = Array.init n get in
  let rows =
    Array.init n (fun i ->
        match Hashtbl.find_opt rows i with Some r -> r | None -> [ (i, Q.one) ])
  in
  Array.iteri (check_row n) rows;
  let final_index = !index in
  { labels; rows; find = (fun l -> M.find_opt l final_index) }

let num_states c = Array.length c.labels
let label c i = c.labels.(i)
let index c l = c.find l
let succ c i = c.rows.(i)

let prob c i j =
  match List.assoc_opt j c.rows.(i) with
  | Some p -> p
  | None -> Q.zero

let edges c =
  let acc = ref [] in
  Array.iteri (fun i row -> List.iter (fun (j, p) -> acc := (i, j, p) :: !acc) row) c.rows;
  List.rev !acc

let row_dist c i = Dist.make ~compare:Int.compare c.rows.(i)

let map_labels f c =
  let labels = Array.map f c.labels in
  { labels; rows = c.rows; find = (fun _ -> None) }

let pp pp_label fmt c =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i row ->
      Format.fprintf fmt "%d [%a] ->" i pp_label c.labels.(i);
      List.iter (fun (j, p) -> Format.fprintf fmt " %d:%s" j (Q.to_string p)) row;
      Format.fprintf fmt "@,")
    c.rows;
  Format.fprintf fmt "@]"
