(** Finite Markov chains over labelled states (Section 2.3 of the paper).

    States are indexed [0 .. num_states - 1]; each carries a label of type
    ['a].  Every state has an outgoing distribution with exact rational
    probabilities summing to 1. *)

type 'a t

exception Chain_error of string

val of_step :
  hash:('a -> int) ->
  equal:('a -> 'a -> bool) ->
  ?max_states:int ->
  ?guard:Guard.t ->
  init:'a list ->
  step:('a -> 'a Prob.Dist.t) ->
  unit ->
  'a t
(** Explores the state space reachable from [init] by breadth-first search.
    This is how a transition kernel and an input database induce the chain
    over database instances (Section 3.1).  States are interned in a hash
    table keyed by [(hash, equal)] — [hash] must agree with [equal] — so
    exploration costs O(states * out-degree) expected rather than the
    O(n log n) full-state comparisons of a map.  Raises {!Chain_error} when
    more than [max_states] states are discovered (default: unbounded).

    [guard] (default {!Guard.unlimited}) is charged one state per fresh
    intern and polled once per expanded state, so exploration raises
    {!Guard.Exhausted} when the guard's state budget or deadline runs out
    or an interrupt is requested — a {e recoverable} stop, unlike the
    [max_states] hard failure, letting engines degrade to a partial
    result. *)

val of_step_ordered :
  compare:('a -> 'a -> int) ->
  ?max_states:int ->
  init:'a list ->
  step:('a -> 'a Prob.Dist.t) ->
  unit ->
  'a t
(** {!of_step} with [Map]-based interning over [compare].  Baseline for the
    hashed intern table (bench E19); also usable when labels have an order
    but no cheap hash. *)

val of_rows :
  ?equal:('a -> 'a -> bool) -> ?hash:('a -> int) -> 'a array -> (int * Bigq.Q.t) list array -> 'a t
(** Direct construction; row [i] lists the successors of state [i].
    [equal] (default structural equality) and [hash] (default
    [Hashtbl.hash], which must agree with [equal]) drive the label lookup
    behind {!index}.  Raises {!Chain_error} if a row does not sum to 1 or
    mentions a bad index. *)

val num_states : 'a t -> int
val label : 'a t -> int -> 'a
val index : 'a t -> 'a -> int option
val succ : 'a t -> int -> (int * Bigq.Q.t) list
val prob : 'a t -> int -> int -> Bigq.Q.t
(** One-step transition probability. *)

val edges : 'a t -> (int * int * Bigq.Q.t) list

val row_dist : 'a t -> int -> int Prob.Dist.t
val map_labels : ('a -> 'b) -> 'a t -> 'b t

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
