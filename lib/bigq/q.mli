(** Exact rational numbers.

    Values are kept in lowest terms with a positive denominator (and
    denominator 1 for zero), so structural equality is numeric equality and
    rationals can be used as keys in maps built over {!compare}.

    These are the probabilities of the whole library: every exact evaluation
    algorithm of the paper (Prop 4.4, Prop 5.4, Thm 5.5) computes over [Q.t]
    so that answers such as [0] vs [1/2{^n}] (Lemma 4.2) are certified rather
    than approximated. *)

type t

val zero : t
val one : t
val half : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalised rational [num/den].  Raises
    [Division_by_zero] if [den] is zero. *)

val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints a b] is [a/b]. *)

val of_float : float -> t
(** The exact rational value of a finite float (mantissa over a power of
    two).  Raises [Invalid_argument] on NaN or infinities. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val is_zero : t -> bool
val is_one : t -> bool
val sign : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal} (values are canonical), so rationals can key hash
    tables as well as maps. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val inv : t -> t
val pow : t -> int -> t
(** [pow q k] for any integer [k]; negative exponents invert. *)

val min : t -> t -> t
val max : t -> t -> t
val sum : t list -> t

val to_float : t -> float

val of_string : string -> t
(** Accepts ["a"], ["a/b"] and decimal literals such as ["0.25"] or
    ["-1.5e-2"]-free plain decimals (no exponent). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
