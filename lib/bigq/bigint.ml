(* Sign-magnitude representation; [sign] is 0 exactly when [mag] is zero, so
   structural equality is numeric equality. *)

type t = { sign : int; mag : Nat.t }

let mk sign mag = if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let minus_one = { sign = -1; mag = Nat.one }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Nat.of_int n }
  else { sign = -1; mag = Nat.of_int (-n) }

let to_int_opt n =
  match Nat.to_int_opt n.mag with
  | Some m -> Some (n.sign * m)
  | None -> None

let of_nat m = mk 1 m
let to_nat n = n.mag
let sign n = n.sign
let is_zero n = n.sign = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let hash n = ((Nat.hash n.mag * 3) + n.sign + 1) land max_int

let neg n = mk (-n.sign) n.mag
let abs n = mk (Stdlib.abs n.sign) n.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (Nat.sub a.mag b.mag)
    else mk b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = mk (a.sign * b.sign) (Nat.mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (mk (a.sign * b.sign) q, mk a.sign r)

let gcd a b = of_nat (Nat.gcd a.mag b.mag)
let pow a k = mk (if k land 1 = 1 then a.sign else Stdlib.abs a.sign) (Nat.pow a.mag k)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let to_float n = float_of_int n.sign *. Nat.to_float n.mag
let num_bits n = Nat.num_bits n.mag
let shift_right n s = mk n.sign (Nat.shift_right n.mag s)

let of_string s =
  if String.length s = 0 then invalid_arg "Bigint.of_string: empty";
  match s.[0] with
  | '-' -> mk (-1) (Nat.of_string (String.sub s 1 (String.length s - 1)))
  | '+' -> mk 1 (Nat.of_string (String.sub s 1 (String.length s - 1)))
  | _ -> mk 1 (Nat.of_string s)

let to_string n = if n.sign < 0 then "-" ^ Nat.to_string n.mag else Nat.to_string n.mag
let pp fmt n = Format.pp_print_string fmt (to_string n)
