(* Little-endian limbs in base 2^30, canonical (no trailing zero limb).
   All limb products and two-limb dividends fit in OCaml's 63-bit ints. *)

type t = int array

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]

let is_zero n = Array.length n = 0

(* Strip trailing zero limbs to restore canonicity. *)
let normalize (a : int array) : t =
  let len = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let n = top len in
  if n = len then a else Array.sub a 0 n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative"
  else if n = 0 then zero
  else begin
    let rec limbs acc n = if n = 0 then acc else limbs ((n land mask) :: acc) (n lsr base_bits) in
    let l = List.rev (limbs [] n) in
    Array.of_list l
  end

let to_int_opt n =
  (* 63-bit ints hold at most three limbs, and three only partially. *)
  match Array.length n with
  | 0 -> Some 0
  | 1 -> Some n.(0)
  | 2 -> Some ((n.(1) lsl base_bits) lor n.(0))
  | 3 when n.(2) < 1 lsl (62 - (2 * base_bits)) ->
    Some ((n.(2) lsl (2 * base_bits)) lor (n.(1) lsl base_bits) lor n.(0))
  | _ -> None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

(* FNV-1a over the limbs; the representation is canonical, so equal values
   hash equal. *)
let hash (n : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length n - 1 do
    h := (!h lxor n.(i)) * 0x01000193 land max_int
  done;
  !h

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr base_bits
      done;
      (* Propagate the final carry; it cannot overflow past la+lb limbs. *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = r.(!k) + !carry in
        r.(!k) <- t land mask;
        carry := t lsr base_bits;
        incr k
      done
    done;
    normalize r
  end

let num_bits n =
  let l = Array.length n in
  if l = 0 then 0
  else begin
    let top = n.(l - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((l - 1) * base_bits) + width 0 top
  end

let shift_left n s =
  if s < 0 then invalid_arg "Nat.shift_left"
  else if s = 0 || is_zero n then n
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let ln = Array.length n in
    let r = Array.make (ln + limbs + 1) 0 in
    for i = 0 to ln - 1 do
      let v = n.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr base_bits
    done;
    normalize r
  end

let shift_right n s =
  if s < 0 then invalid_arg "Nat.shift_right"
  else if s = 0 || is_zero n then n
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let ln = Array.length n in
    if limbs >= ln then zero
    else begin
      let lr = ln - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = n.(i + limbs) lsr bits in
        let hi = if i + limbs + 1 < ln && bits > 0 then (n.(i + limbs + 1) lsl (base_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

(* Division by a single limb; returns (quotient, remainder limb). *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Knuth Algorithm D (TAOCP vol. 2, 4.3.1).  Requires len v >= 2. *)
let divmod_knuth u v =
  let n = Array.length v in
  (* Normalize so the top limb of v has its high bit set. *)
  let rec leading_bits w v = if v land (base lsr 1) <> 0 then w else leading_bits (w + 1) (v lsl 1) in
  let s = leading_bits 0 v.(n - 1) in
  let u' = shift_left u s and v' = shift_left v s in
  let v' = (v' : int array) in
  let lu = Array.length u' in
  let m = lu - n in
  (* Working dividend with one extra top limb. *)
  let w = Array.make (lu + 1) 0 in
  Array.blit u' 0 w 0 lu;
  let q = Array.make (m + 1) 0 in
  let vtop = v'.(n - 1) and vsnd = v'.(n - 2) in
  for j = m downto 0 do
    let top = (w.(j + n) lsl base_bits) lor w.(j + n - 1) in
    let qhat = ref (top / vtop) and rhat = ref (top mod vtop) in
    let continue = ref true in
    while !continue do
      if !qhat >= base || (!qhat * vsnd) > ((!rhat lsl base_bits) lor w.(j + n - 2)) then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then continue := false
      end else continue := false
    done;
    (* w[j .. j+n] -= qhat * v' *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v'.(i)) + !borrow in
      let d = w.(j + i) - (p land mask) in
      if d < 0 then begin
        w.(j + i) <- d + base;
        borrow := (p lsr base_bits) + 1
      end else begin
        w.(j + i) <- d;
        borrow := p lsr base_bits
      end
    done;
    let d = w.(j + n) - !borrow in
    if d < 0 then begin
      (* qhat was one too large; add v' back. *)
      w.(j + n) <- d + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let t = w.(j + i) + v'.(i) + !carry in
        w.(j + i) <- t land mask;
        carry := t lsr base_bits
      done;
      w.(j + n) <- (w.(j + n) + !carry) land mask
    end else w.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = normalize (Array.sub w 0 n) in
  (normalize q, shift_right r s)

let divmod a b =
  if is_zero b then raise Division_by_zero
  else if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end else divmod_knuth a b

let rec gcd a b = if is_zero b then a else gcd b (snd (divmod a b))

let pow a k =
  if k < 0 then invalid_arg "Nat.pow: negative exponent";
  let rec go acc a k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc a else acc in
      go acc (mul a a) (k lsr 1)
    end
  in
  go one a k

let to_float n = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) n 0.0

(* Decimal conversion goes through chunks of 9 digits (10^9 < 2^30). *)
let chunk = 1_000_000_000
let chunk_digits = 9

let to_string n =
  if is_zero n then "0"
  else begin
    let rec go acc n =
      if is_zero n then acc
      else begin
        let q, r = divmod_limb n chunk in
        if is_zero q then string_of_int r :: acc
        else go (Printf.sprintf "%09d" r :: acc) q
      end
    in
    String.concat "" (go [] n)
  end

let pow10 = [| 1; 10; 100; 1_000; 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000; 1_000_000_000 |]

let of_string s =
  if String.length s = 0 then invalid_arg "Nat.of_string: empty";
  String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Nat.of_string: non-digit") s;
  let acc = ref zero in
  let i = ref 0 in
  let len = String.length s in
  while !i < len do
    let take = min chunk_digits (len - !i) in
    let part = int_of_string (String.sub s !i take) in
    acc := add (mul !acc (of_int pow10.(take))) (of_int part);
    i := !i + take
  done;
  !acc

let pp fmt n = Format.pp_print_string fmt (to_string n)
