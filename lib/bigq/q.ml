type t = { qnum : Bigint.t; qden : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { qnum = Bigint.zero; qden = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    let q1, _ = Bigint.divmod num g and q2, _ = Bigint.divmod den g in
    { qnum = q1; qden = q2 }
  end

let zero = { qnum = Bigint.zero; qden = Bigint.one }
let one = { qnum = Bigint.one; qden = Bigint.one }
let half = { qnum = Bigint.one; qden = Bigint.of_int 2 }

let of_int n = { qnum = Bigint.of_int n; qden = Bigint.one }
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

(* Exact: every finite float is m * 2^e with m a 53-bit integer, so the
   result represents the float's precise value (not a decimal rounding). *)
let of_float f =
  if not (Float.is_finite f) then invalid_arg "Q.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    let m = Bigint.of_int (Int64.to_int (Int64.of_float (Float.ldexp m 53))) in
    let e = e - 53 in
    if e >= 0 then { qnum = Bigint.mul m (Bigint.pow (Bigint.of_int 2) e); qden = Bigint.one }
    else make m (Bigint.pow (Bigint.of_int 2) (-e))
  end
let of_bigint n = { qnum = n; qden = Bigint.one }
let num q = q.qnum
let den q = q.qden

let is_zero q = Bigint.is_zero q.qnum
let is_one q = Bigint.equal q.qnum Bigint.one && Bigint.equal q.qden Bigint.one
let sign q = Bigint.sign q.qnum

let compare a b =
  (* Cross-multiplication; denominators are positive so order is preserved. *)
  Bigint.compare (Bigint.mul a.qnum b.qden) (Bigint.mul b.qnum a.qden)

let equal a b = Bigint.equal a.qnum b.qnum && Bigint.equal a.qden b.qden

(* Values are kept in lowest terms with a positive denominator, so hashing
   the representation hashes the number. *)
let hash q = ((Bigint.hash q.qnum * 0x01000193) lxor Bigint.hash q.qden) land max_int

let neg q = { q with qnum = Bigint.neg q.qnum }
let abs q = { q with qnum = Bigint.abs q.qnum }

let add a b =
  make
    (Bigint.add (Bigint.mul a.qnum b.qden) (Bigint.mul b.qnum a.qden))
    (Bigint.mul a.qden b.qden)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.qnum b.qnum) (Bigint.mul a.qden b.qden)
let div a b = make (Bigint.mul a.qnum b.qden) (Bigint.mul a.qden b.qnum)
let inv q = div one q

let pow q k =
  if k >= 0 then { qnum = Bigint.pow q.qnum k; qden = Bigint.pow q.qden k }
  else inv { qnum = Bigint.pow q.qnum (-k); qden = Bigint.pow q.qden (-k) }

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sum qs = List.fold_left add zero qs

let to_float q =
  (* Scale both parts down so each fits comfortably in a float mantissa
     range before dividing; avoids inf/inf on huge operands. *)
  let shift = Stdlib.max 0 (Stdlib.max (Bigint.num_bits q.qnum) (Bigint.num_bits q.qden) - 512) in
  Bigint.to_float (Bigint.shift_right q.qnum shift)
  /. Bigint.to_float (Bigint.shift_right q.qden shift)

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    make
      (Bigint.of_string (String.sub s 0 i))
      (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (Bigint.of_string s)
     | Some i ->
       let whole = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       let negative = String.length whole > 0 && whole.[0] = '-' in
       let whole_q = if whole = "" || whole = "-" || whole = "+" then zero else of_bigint (Bigint.of_string whole) in
       let frac_q =
         if frac = "" then zero
         else
           make
             (Bigint.of_string frac)
             (Bigint.of_nat (Nat.pow (Nat.of_int 10) (String.length frac)))
       in
       if negative then sub whole_q frac_q else add whole_q frac_q)

let to_string q =
  if Bigint.equal q.qden Bigint.one then Bigint.to_string q.qnum
  else Bigint.to_string q.qnum ^ "/" ^ Bigint.to_string q.qden

let pp fmt q = Format.pp_print_string fmt (to_string q)
