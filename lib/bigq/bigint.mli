(** Arbitrary-precision signed integers, built on {!Nat}. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
val to_int_opt : t -> int option
val of_nat : Nat.t -> t

val to_nat : t -> Nat.t
(** Magnitude of the argument. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Agrees with {!equal}: equal integers hash equal. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** Truncated division: the quotient rounds toward zero and the remainder has
    the sign of the dividend, matching OCaml's [(/)] and [mod].  Raises
    [Division_by_zero] if the divisor is zero. *)

val gcd : t -> t -> t
(** Non-negative gcd of the magnitudes. *)

val pow : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val num_bits : t -> int
val shift_right : t -> int -> t

val of_string : string -> t
(** Decimal, with an optional leading ['-'] or ['+']. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
