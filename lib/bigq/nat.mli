(** Arbitrary-precision natural numbers (magnitudes).

    Values are canonical: a little-endian array of limbs in base [2^30] with
    no trailing zero limb, so structural equality coincides with numeric
    equality.  This module is the workhorse beneath {!Bigint} and {!Q}; most
    clients should use those instead. *)

type t

val base_bits : int
(** Number of bits per limb (30). *)

val zero : t
val one : t

val of_int : int -> t
(** [of_int n] is [n] as a natural number.  Raises [Invalid_argument] if
    [n < 0]. *)

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** FNV-style hash of the canonical limb array; agrees with {!equal}. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is [a - b].  Raises [Invalid_argument] if [a < b]. *)

val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)].  Raises [Division_by_zero] if
    [b = 0]. *)

val gcd : t -> t -> t
(** Greatest common divisor; [gcd 0 n = n]. *)

val pow : t -> int -> t
(** [pow a k] is [a{^k}].  Raises [Invalid_argument] if [k < 0]. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val to_float : t -> float

val of_string : string -> t
(** Parses a non-empty decimal string.  Raises [Invalid_argument] on any
    non-digit character. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
