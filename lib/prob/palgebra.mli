(** Relational algebra extended by [repair-key]: the query language in which
    the paper's transition kernels are written (Definition 3.1).

    Evaluating an expression against a database yields a distribution over
    result relations.  Distinct [Repair_key] occurrences make independent
    choices; deterministic operators are applied within every world. *)

type t =
  | Rel of string
  | Const of Relational.Relation.t
  | Select of Relational.Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Product of t * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Extend of string * Relational.Pred.term * t
  | Aggregate of {
      group_by : string list;
      agg : Relational.Algebra.agg;
      src : string option;
      out : string;
      arg : t;
    }
  | Repair_key of { key : string list; weight : string option; arg : t }

val of_algebra : Relational.Algebra.t -> t
(** Embeds a deterministic expression. *)

val to_algebra : t -> Relational.Algebra.t option
(** [Some a] when the expression contains no [Repair_key]. *)

val is_deterministic : t -> bool

val repair_key : ?weight:string -> string list -> t -> t
(** [repair_key ~weight:"P" ["A"] e] is [repair-key_{A@P}(e)]. *)

val repair_key_all : ?weight:string -> t -> t
(** [repair-key_{∅@P}]: chooses a single tuple from the whole relation. *)

val schema_of : t -> Relational.Database.t -> string list
(** Result schema without evaluating.  Mirrors
    {!Relational.Algebra.schema_of}: raises
    {!Relational.Relation.Schema_error} where {!eval} would, in particular
    on a [Project] whose columns are not a subset of the child schema. *)

val eval : t -> Relational.Database.t -> Relational.Relation.t Dist.t
(** Exact evaluation; the support may be exponential in the number of key
    groups under [Repair_key]. *)

val eval_sampled : Random.State.t -> t -> Relational.Database.t -> Relational.Relation.t
(** One world, drawn with the correct probability, in polynomial time. *)

val pp : Format.formatter -> t -> unit
