module Q = Bigq.Q
module Relation = Relational.Relation
module Tuple = Relational.Tuple
module Database = Relational.Database

let possible dist =
  match Dist.support dist with
  | [] -> invalid_arg "possible: empty distribution"
  | (first, _) :: rest -> List.fold_left (fun acc (r, _) -> Relation.union acc r) first (List.map Fun.id rest)

let certain dist =
  match Dist.support dist with
  | [] -> invalid_arg "certain: empty distribution"
  | (first, _) :: rest -> List.fold_left (fun acc (r, _) -> Relation.inter acc r) first rest

let tuple_confidence dist =
  let all = possible dist in
  List.rev
    (Relation.fold (fun t acc -> (t, Dist.prob (fun r -> Relation.mem t r) dist) :: acc) all [])

let expected_cardinality dist =
  Dist.expectation (fun r -> Q.of_int (Relation.cardinal r)) dist

let relation_marginal name dist =
  let schema =
    match
      List.find_map (fun (db, _) -> Database.find_opt name db) (Dist.support dist)
    with
    | Some r -> Relation.columns r
    | None -> raise Not_found
  in
  Dist.map ~compare:Relation.compare
    (fun db ->
      match Database.find_opt name db with
      | Some r -> r
      | None -> Relation.empty schema)
    dist
