module Algebra = Relational.Algebra
module Relation = Relational.Relation
module Database = Relational.Database

type t =
  | Rel of string
  | Const of Relation.t
  | Select of Relational.Pred.t * t
  | Project of string list * t
  | Rename of (string * string) list * t
  | Product of t * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Extend of string * Relational.Pred.term * t
  | Aggregate of {
      group_by : string list;
      agg : Relational.Algebra.agg;
      src : string option;
      out : string;
      arg : t;
    }
  | Repair_key of { key : string list; weight : string option; arg : t }

let rec of_algebra = function
  | Algebra.Rel n -> Rel n
  | Algebra.Const r -> Const r
  | Algebra.Select (p, e) -> Select (p, of_algebra e)
  | Algebra.Project (cols, e) -> Project (cols, of_algebra e)
  | Algebra.Rename (pairs, e) -> Rename (pairs, of_algebra e)
  | Algebra.Product (a, b) -> Product (of_algebra a, of_algebra b)
  | Algebra.Join (a, b) -> Join (of_algebra a, of_algebra b)
  | Algebra.Union (a, b) -> Union (of_algebra a, of_algebra b)
  | Algebra.Diff (a, b) -> Diff (of_algebra a, of_algebra b)
  | Algebra.Extend (c, term, e) -> Extend (c, term, of_algebra e)
  | Algebra.Aggregate { group_by; agg; src; out; arg } ->
    Aggregate { group_by; agg; src; out; arg = of_algebra arg }

let rec to_algebra = function
  | Rel n -> Some (Algebra.Rel n)
  | Const r -> Some (Algebra.Const r)
  | Select (p, e) -> Option.map (fun e -> Algebra.Select (p, e)) (to_algebra e)
  | Project (cols, e) -> Option.map (fun e -> Algebra.Project (cols, e)) (to_algebra e)
  | Rename (pairs, e) -> Option.map (fun e -> Algebra.Rename (pairs, e)) (to_algebra e)
  | Product (a, b) -> binary (fun a b -> Algebra.Product (a, b)) a b
  | Join (a, b) -> binary (fun a b -> Algebra.Join (a, b)) a b
  | Union (a, b) -> binary (fun a b -> Algebra.Union (a, b)) a b
  | Diff (a, b) -> binary (fun a b -> Algebra.Diff (a, b)) a b
  | Extend (c, term, e) -> Option.map (fun e -> Algebra.Extend (c, term, e)) (to_algebra e)
  | Aggregate { group_by; agg; src; out; arg } ->
    Option.map
      (fun arg -> Algebra.Aggregate { group_by; agg; src; out; arg })
      (to_algebra arg)
  | Repair_key _ -> None

and binary mk a b =
  match (to_algebra a, to_algebra b) with
  | Some a, Some b -> Some (mk a b)
  | _ -> None

let is_deterministic e = Option.is_some (to_algebra e)

let repair_key ?weight key arg = Repair_key { key; weight; arg }
let repair_key_all ?weight arg = Repair_key { key = []; weight; arg }

let rec schema_of e db =
  match e with
  | Rel n -> Relation.columns (Database.find n db)
  | Const r -> Relation.columns r
  | Select (_, e) -> schema_of e db
  | Project (cols, e) -> Algebra.project_schema cols (schema_of e db)
  | Rename (pairs, e) ->
    List.map
      (fun c -> match List.assoc_opt c pairs with Some fresh -> fresh | None -> c)
      (schema_of e db)
  | Product (a, b) -> schema_of a db @ schema_of b db
  | Join (a, b) ->
    let ca = schema_of a db in
    ca @ List.filter (fun c -> not (List.mem c ca)) (schema_of b db)
  | Union (a, _) | Diff (a, _) -> schema_of a db
  | Extend (c, _, e) -> schema_of e db @ [ c ]
  | Aggregate { group_by; out; _ } -> group_by @ [ out ]
  | Repair_key { arg; _ } -> schema_of arg db

(* Apply a deterministic operator to concrete relations by delegating to the
   classical evaluator on constant expressions. *)
let det1 mk r = Algebra.eval (mk (Algebra.Const r)) Database.empty
let det2 mk ra rb = Algebra.eval (mk (Algebra.Const ra) (Algebra.Const rb)) Database.empty

let rcompare = Relation.compare

let rec eval e db : Relation.t Dist.t =
  match to_algebra e with
  | Some a -> Dist.return (Algebra.eval a db)
  | None -> (
    match e with
    | Rel _ | Const _ -> assert false (* deterministic, handled above *)
    | Select (p, e) -> Dist.map ~compare:rcompare (det1 (fun c -> Algebra.Select (p, c))) (eval e db)
    | Project (cols, e) ->
      Dist.map ~compare:rcompare (det1 (fun c -> Algebra.Project (cols, c))) (eval e db)
    | Rename (pairs, e) ->
      Dist.map ~compare:rcompare (det1 (fun c -> Algebra.Rename (pairs, c))) (eval e db)
    | Product (a, b) ->
      Dist.product ~compare:rcompare (det2 (fun a b -> Algebra.Product (a, b))) (eval a db) (eval b db)
    | Join (a, b) ->
      Dist.product ~compare:rcompare (det2 (fun a b -> Algebra.Join (a, b))) (eval a db) (eval b db)
    | Union (a, b) ->
      Dist.product ~compare:rcompare (det2 (fun a b -> Algebra.Union (a, b))) (eval a db) (eval b db)
    | Diff (a, b) ->
      Dist.product ~compare:rcompare (det2 (fun a b -> Algebra.Diff (a, b))) (eval a db) (eval b db)
    | Extend (c, term, e) ->
      Dist.map ~compare:rcompare (det1 (fun e -> Algebra.Extend (c, term, e))) (eval e db)
    | Aggregate { group_by; agg; src; out; arg } ->
      Dist.map ~compare:rcompare
        (det1 (fun arg -> Algebra.Aggregate { group_by; agg; src; out; arg }))
        (eval arg db)
    | Repair_key { key; weight; arg } ->
      Dist.bind ~compare:rcompare (eval arg db) (fun r -> Repair_key.repair ~key ?weight r))

let rec eval_sampled rng e db =
  match to_algebra e with
  | Some a -> Algebra.eval a db
  | None -> (
    match e with
    | Rel _ | Const _ -> assert false
    | Select (p, e) -> det1 (fun c -> Algebra.Select (p, c)) (eval_sampled rng e db)
    | Project (cols, e) -> det1 (fun c -> Algebra.Project (cols, c)) (eval_sampled rng e db)
    | Rename (pairs, e) -> det1 (fun c -> Algebra.Rename (pairs, c)) (eval_sampled rng e db)
    | Product (a, b) ->
      det2 (fun a b -> Algebra.Product (a, b)) (eval_sampled rng a db) (eval_sampled rng b db)
    | Join (a, b) ->
      det2 (fun a b -> Algebra.Join (a, b)) (eval_sampled rng a db) (eval_sampled rng b db)
    | Union (a, b) ->
      det2 (fun a b -> Algebra.Union (a, b)) (eval_sampled rng a db) (eval_sampled rng b db)
    | Diff (a, b) ->
      det2 (fun a b -> Algebra.Diff (a, b)) (eval_sampled rng a db) (eval_sampled rng b db)
    | Extend (c, term, e) -> det1 (fun e -> Algebra.Extend (c, term, e)) (eval_sampled rng e db)
    | Aggregate { group_by; agg; src; out; arg } ->
      det1
        (fun arg -> Algebra.Aggregate { group_by; agg; src; out; arg })
        (eval_sampled rng arg db)
    | Repair_key { key; weight; arg } ->
      Repair_key.sample rng ~key ?weight (eval_sampled rng arg db))

let rec pp fmt = function
  | Rel n -> Format.pp_print_string fmt n
  | Const r -> Format.fprintf fmt "{%d tuples}" (Relation.cardinal r)
  | Select (p, e) -> Format.fprintf fmt "σ[%a](%a)" Relational.Pred.pp p pp e
  | Project (cols, e) -> Format.fprintf fmt "π[%s](%a)" (String.concat "," cols) pp e
  | Rename (pairs, e) ->
    let pair fmt (o, n) = Format.fprintf fmt "%s→%s" o n in
    Format.fprintf fmt "ρ[%a](%a)"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") pair)
      pairs pp e
  | Product (a, b) -> Format.fprintf fmt "(%a × %a)" pp a pp b
  | Join (a, b) -> Format.fprintf fmt "(%a ⋈ %a)" pp a pp b
  | Union (a, b) -> Format.fprintf fmt "(%a ∪ %a)" pp a pp b
  | Diff (a, b) -> Format.fprintf fmt "(%a − %a)" pp a pp b
  | Extend (c, term, e) ->
    let pp_term fmt = function
      | Relational.Pred.Col src -> Format.pp_print_string fmt src
      | Relational.Pred.Const v -> Relational.Value.pp fmt v
    in
    Format.fprintf fmt "ε[%s:=%a](%a)" c pp_term term pp e
  | Aggregate { group_by; agg; src; out; arg } ->
    let agg_name =
      match agg with
      | Algebra.Count -> "count"
      | Algebra.Sum -> "sum"
      | Algebra.Min -> "min"
      | Algebra.Max -> "max"
    in
    Format.fprintf fmt "γ[%s; %s:=%s(%s)](%a)" (String.concat "," group_by) out agg_name
      (Option.value ~default:"*" src) pp arg
  | Repair_key { key; weight; arg } ->
    Format.fprintf fmt "repair-key[%s%s](%a)" (String.concat "," key)
      (match weight with Some w -> "@" ^ w | None -> "")
      pp arg
