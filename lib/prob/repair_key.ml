module Q = Bigq.Q
module Value = Relational.Value
module Relation = Relational.Relation
module Tuple = Relational.Tuple

exception Repair_error of string

let err fmt = Format.kasprintf (fun s -> raise (Repair_error s)) fmt

module Key_map = Map.Make (Tuple)

(* Weight of a tuple: the weight column's numeric value (by position), or 1
   for uniform. *)
let weight_fn_at wi =
  match wi with
  | None -> fun _ -> Q.one
  | Some i ->
    fun (t : Tuple.t) ->
      let q = try Value.to_q t.(i) with Invalid_argument _ -> err "weight %s is not numeric" (Value.to_string t.(i)) in
      if Q.sign q <= 0 then err "weight %s is not positive" (Q.to_string q);
      q

(* Collapse tuples equal on all non-weight columns by summing weights,
   restoring the functional dependency schema(R)-P -> P (footnote 1).
   Folds over the relation directly (ascending canonical order, same
   grouping order as the old list-based traversal). *)
let collapse_fd_at r wi =
  let strip (t : Tuple.t) =
    Array.init (Array.length t - 1) (fun i -> if i < wi then t.(i) else t.(i + 1))
  in
  let groups =
    Relation.fold
      (fun t acc ->
        let k = strip t in
        let prev = Option.value ~default:[] (Key_map.find_opt k acc) in
        Key_map.add k (t :: prev) acc)
      r Key_map.empty
  in
  Key_map.fold
    (fun _ ts acc ->
      match ts with
      | [ t ] -> t :: acc
      | (first :: _) as ts ->
        let total = Q.sum (List.map (fun (t : Tuple.t) -> Value.to_q t.(wi)) ts) in
        let merged = Array.copy first in
        merged.(wi) <- Value.Rat total;
        merged :: acc
      | [] -> acc)
    groups []

(* Group the (collapsed) tuples by key positions; each group keeps its
   tuples with their weights.  [Key_map.bindings] later yields groups in
   ascending key order — the order the sampler consumes RNG draws in. *)
let groups_of_at r ~ki ~wi =
  let wf = weight_fn_at wi in
  let add t acc =
    let k = Array.map (fun i -> t.(i)) ki in
    let prev = Option.value ~default:[] (Key_map.find_opt k acc) in
    Key_map.add k ((t, wf t) :: prev) acc
  in
  match wi with
  | None -> Relation.fold add r Key_map.empty
  | Some wi -> List.fold_left (fun acc t -> add t acc) Key_map.empty (collapse_fd_at r wi)

(* Name-based entry: resolve key columns first, then the weight column —
   the Schema_error precedence the original implementation had. *)
let groups_of r key weight =
  let ki = Array.of_list (List.map (Relation.column_index r) key) in
  let wi = Option.map (Relation.column_index r) weight in
  groups_of_at r ~ki ~wi

let repair_groups cols groups =
  (* One distribution per key group; independent product across groups. *)
  let group_dists =
    List.map
      (fun (_, choices) ->
        Dist.make_unnormalised ~compare:Tuple.compare choices)
      groups
  in
  Dist.map ~compare:Relation.compare
    (fun chosen -> Relation.make cols chosen)
    (Dist.sequence ~compare:(List.compare Tuple.compare) group_dists)

let repair ~key ?weight r =
  repair_groups (Relation.columns r) (Key_map.bindings (groups_of r key weight))

let repair_at ~key ?weight r =
  repair_groups (Relation.columns r) (Key_map.bindings (groups_of_at r ~ki:key ~wi:weight))

let num_repairs ~key r =
  let groups = groups_of r key None in
  Key_map.fold (fun _ ts acc -> acc * List.length ts) groups 1

(* One RNG draw per key group.  The enabled check runs once per repair-key
   execution (not per group/tuple), per the [Obs] contract. *)
let draws_c = Obs.counter "repair_key.draws"

let sample_groups rng cols groups =
  if Obs.enabled () then Obs.add draws_c (List.length groups);
  let chosen =
    List.map
      (fun (_, choices) ->
        Dist.sample rng (Dist.make_unnormalised ~compare:Tuple.compare choices))
      groups
  in
  Relation.make cols chosen

let sample rng ~key ?weight r =
  sample_groups rng (Relation.columns r) (Key_map.bindings (groups_of r key weight))

let sample_at rng ~key ?weight r =
  sample_groups rng (Relation.columns r) (Key_map.bindings (groups_of_at r ~ki:key ~wi:weight))
