module Algebra = Relational.Algebra
module Relation = Relational.Relation
module Database = Relational.Database
module Plan = Relational.Plan

type t = {
  schema : string list;
  eval : Database.t -> Relation.t Dist.t;
  sample : Random.State.t -> Database.t -> Relation.t;
}

let schema p = p.schema
let eval p db = p.eval db
let sample rng p db = p.sample rng db

let rcompare = Relation.compare

(* A Repair_key-free subtree is one compiled deterministic plan: a point
   distribution under [eval], no RNG consumption under [sample] — exactly
   like the interpreter's [to_algebra] fast path. *)
let det plan =
  {
    schema = Plan.schema plan;
    eval = (fun db -> Dist.return (Plan.run plan db));
    sample = (fun _ db -> Plan.run plan db);
  }

(* [Obs.wrap1]/[wrap2] are identity when stats are off (checked once here,
   at plan-build time).  Under [eval] the tick count is one per support
   element of the operand distribution — the number of worlds the operator
   actually touched. *)
let unary ~op out f c =
  let f = Obs.wrap1 ("pplan." ^ op) f in
  {
    schema = out;
    eval = (fun db -> Dist.map ~compare:rcompare f (c.eval db));
    sample = (fun rng db -> f (c.sample rng db));
  }

(* The interpreter ([Palgebra.eval_sampled]) hands both sub-results to one
   function call, whose arguments OCaml evaluates right to left — so the
   RIGHT operand draws from the RNG first.  Sample in that same order here,
   keeping fixed-seed runs bit-identical with and without plans. *)
let binary ~op out f a b =
  let f = Obs.wrap2 ("pplan." ^ op) f in
  {
    schema = out;
    eval = (fun db -> Dist.product ~compare:rcompare f (a.eval db) (b.eval db));
    sample =
      (fun rng db ->
        let rb = b.sample rng db in
        let ra = a.sample rng db in
        f ra rb);
  }

let rec plan ~schema_of (e : Palgebra.t) =
  match Palgebra.to_algebra e with
  | Some a -> det (Plan.compile ~schema_of a)
  | None -> (
    match e with
    | Palgebra.Rel _ | Palgebra.Const _ -> assert false (* deterministic, handled above *)
    | Palgebra.Select (p, e) ->
      let c = plan ~schema_of e in
      unary ~op:"select" c.schema (Plan.Ops.select c.schema p) c
    | Palgebra.Project (cols, e) ->
      let c = plan ~schema_of e in
      let out, f = Plan.Ops.project c.schema cols in
      unary ~op:"project" out f c
    | Palgebra.Rename (pairs, e) ->
      let c = plan ~schema_of e in
      let out, f = Plan.Ops.rename c.schema pairs in
      unary ~op:"rename" out f c
    | Palgebra.Product (a, b) ->
      let ca = plan ~schema_of a and cb = plan ~schema_of b in
      let out, f = Plan.Ops.product ca.schema cb.schema in
      binary ~op:"product" out f ca cb
    | Palgebra.Join (a, b) ->
      let ca = plan ~schema_of a and cb = plan ~schema_of b in
      let out, f = Plan.Ops.join ca.schema cb.schema in
      binary ~op:"join" out f ca cb
    | Palgebra.Union (a, b) ->
      let ca = plan ~schema_of a and cb = plan ~schema_of b in
      let out, f = Plan.Ops.union ca.schema cb.schema in
      binary ~op:"union" out f ca cb
    | Palgebra.Diff (a, b) ->
      let ca = plan ~schema_of a and cb = plan ~schema_of b in
      let out, f = Plan.Ops.diff ca.schema cb.schema in
      binary ~op:"diff" out f ca cb
    | Palgebra.Extend (c, term, e) ->
      let ce = plan ~schema_of e in
      let out, f = Plan.Ops.extend ce.schema c term in
      unary ~op:"extend" out f ce
    | Palgebra.Aggregate { group_by; agg; src; out; arg } ->
      let c = plan ~schema_of arg in
      let out_cols, f = Plan.Ops.aggregate c.schema ~group_by ~agg ~src ~out in
      unary ~op:"aggregate" out_cols f c
    | Palgebra.Repair_key { key; weight; arg } ->
      let c = plan ~schema_of arg in
      (* Key positions first, then the weight position: the Schema_error
         precedence of the name-based evaluator. *)
      let ki = Array.of_list (Algebra.indices_of c.schema key) in
      let wi = Option.map (fun w -> List.hd (Algebra.indices_of c.schema [ w ])) weight in
      let repair = Obs.wrap1 "pplan.repair_key" (Repair_key.repair_at ~key:ki ?weight:wi) in
      let sample_one =
        Obs.wrap2 "pplan.repair_key" (fun rng r -> Repair_key.sample_at rng ~key:ki ?weight:wi r)
      in
      {
        schema = c.schema;
        eval = (fun db -> Dist.bind ~compare:rcompare (c.eval db) repair);
        sample =
          (fun rng db ->
            let r = c.sample rng db in
            sample_one rng r);
      })

let compile ?(optimize = false) ~schema_of e =
  let e = if optimize then Optimize.expression ~schema_of e else e in
  plan ~schema_of e

(* --- delta plans -------------------------------------------------------- *)

(* Repair-key makes a fresh independent choice per step, so probabilistic
   subtrees cannot be incrementalised — like delta-aggregate invalidation,
   a probabilistic [delta] falls back to full evaluation.  Deterministic
   expressions get the full [Plan.Delta] treatment. *)
type delta = {
  base : t;
  det : Plan.Delta.t option;  (* [Some] iff the expression is Repair_key-free *)
}

let compile_delta ?(optimize = false) ~schema_of e =
  let e = if optimize then Optimize.expression ~schema_of e else e in
  match Palgebra.to_algebra e with
  | Some a ->
    let d = Plan.Delta.compile ~schema_of a in
    { base = det (Plan.Delta.plan d); det = Some d }
  | None -> { base = plan ~schema_of e; det = None }

let delta_base d = d.base

let delta_incremental d =
  match d.det with Some pd -> Plan.Delta.incremental pd | None -> false

let delta_eval d db delta =
  match (d.det, delta) with
  | Some pd, Some dd when Plan.Delta.incremental pd ->
    Dist.return (Plan.Delta.run_delta pd db dd)
  | _ -> d.base.eval db

(* --- whole interpretations ---------------------------------------------- *)

type interp = (string * t) list

let compile_interp ?optimize ~schema_of i =
  List.map (fun (name, q) -> (name, compile ?optimize ~schema_of q)) (Interp.bindings i)

(* Mirrors [Interp.apply]: per-relation result distributions against the old
   state, folded into databases with the same product order and compare. *)
let apply ip db =
  let dists = List.map (fun (name, p) -> (name, p.eval db)) ip in
  List.fold_left
    (fun acc (name, d) ->
      Dist.product ~compare:Database.compare (fun db r -> Database.add name r db) acc d)
    (Dist.return Database.empty) dists

(* Mirrors [Interp.apply_sampled]: rules sampled in binding order. *)
let apply_sampled rng ip db =
  List.fold_left
    (fun acc (name, p) -> Database.add name (p.sample rng db) acc)
    Database.empty ip

(* --- compiled-artifact cache --------------------------------------------- *)

module Cache = struct
  type 'a t = {
    name : string;
    capacity : int;
    table : (string, 'a) Hashtbl.t;
    order : string Queue.t; (* insertion order; FIFO eviction *)
    mu : Mutex.t;
    hits : int Atomic.t;
    misses : int Atomic.t;
  }

  let create ?(capacity = 64) name =
    if capacity <= 0 then invalid_arg "Pplan.Cache.create: capacity must be positive";
    {
      name;
      capacity;
      table = Hashtbl.create 16;
      order = Queue.create ();
      mu = Mutex.create ();
      hits = Atomic.make 0;
      misses = Atomic.make 0;
    }

  (* Obs ticks follow the zero-cost contract: consulted per lookup (a cache
     lookup is a top-level operation, not a hot loop) and only when stats
     are enabled in the current scope.  The "<name>.hit"/"<name>.miss"
     names surface in stats reports' operator tables when the cache is
     named under the "pplan." prefix. *)
  let tick t suffix =
    if Obs.enabled () then Obs.incr (Obs.counter (t.name ^ suffix))

  let find_or_add t key build =
    let cached = Mutex.protect t.mu (fun () -> Hashtbl.find_opt t.table key) in
    match cached with
    | Some v ->
      Atomic.incr t.hits;
      tick t ".hit";
      v
    | None ->
      (* Build outside the lock: compilation can be slow and must not
         serialise unrelated lookups.  Two concurrent misses on one key may
         both build; the artifacts are interchangeable (compilation is
         deterministic) and the first insert wins. *)
      Atomic.incr t.misses;
      tick t ".miss";
      let v = build () in
      Mutex.protect t.mu (fun () ->
          match Hashtbl.find_opt t.table key with
          | Some v' -> v'
          | None ->
            if Hashtbl.length t.table >= t.capacity then begin
              match Queue.take_opt t.order with
              | Some oldest -> Hashtbl.remove t.table oldest
              | None -> ()
            end;
            Hashtbl.replace t.table key v;
            Queue.add key t.order;
            v)

  let stats t = (Atomic.get t.hits, Atomic.get t.misses, Mutex.protect t.mu (fun () -> Hashtbl.length t.table))

  let clear t =
    Mutex.protect t.mu (fun () ->
        Hashtbl.reset t.table;
        Queue.clear t.order)
end
