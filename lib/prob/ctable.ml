module Q = Bigq.Q
module Value = Relational.Value
module Relation = Relational.Relation
module Database = Relational.Database
module Tuple = Relational.Tuple

type var = { vname : string; domain : (Value.t * Q.t) list }

type cond =
  | CTrue
  | CEq of term * term
  | CNeq of term * term
  | CAnd of cond * cond
  | COr of cond * cond
  | CNot of cond

and term =
  | TVar of string
  | TLit of Value.t

type row = { tuple : Tuple.t; cond : cond }

type t = {
  vars : var list;
  tables : (string * string list * row list) list;
}

exception Ctable_error of string

let err fmt = Format.kasprintf (fun s -> raise (Ctable_error s)) fmt

let rec cond_vars acc = function
  | CTrue -> acc
  | CEq (a, b) | CNeq (a, b) ->
    let term acc = function TVar v -> v :: acc | TLit _ -> acc in
    term (term acc a) b
  | CAnd (a, b) | COr (a, b) -> cond_vars (cond_vars acc a) b
  | CNot a -> cond_vars acc a

let make ~vars ~tables =
  let names = List.map (fun v -> v.vname) vars in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    err "duplicate variable declaration";
  List.iter
    (fun v ->
      if v.domain = [] then err "variable %s has empty domain" v.vname;
      List.iter (fun (_, p) -> if Q.sign p < 0 then err "variable %s has negative weight" v.vname) v.domain;
      if not (Q.is_one (Q.sum (List.map snd v.domain))) then
        err "distribution of %s does not sum to 1" v.vname)
    vars;
  List.iter
    (fun (table, _, rows) ->
      List.iter
        (fun r ->
          List.iter
            (fun v -> if not (List.mem v names) then err "condition in %s uses undeclared variable %s" table v)
            (cond_vars [] r.cond))
        rows)
    tables;
  (* Validate schemas eagerly. *)
  List.iter (fun (_, cols, rows) -> ignore (Relation.make cols (List.map (fun r -> r.tuple) rows))) tables;
  { vars; tables }

let vars t = t.vars
let tables t = t.tables

let flag ~p name =
  { vname = name; domain = [ (Value.Bool true, p); (Value.Bool false, Q.sub Q.one p) ] }

type valuation = (string * Value.t) list

let valuations t =
  let rec go = function
    | [] -> Seq.return []
    | v :: rest ->
      let tails = go rest in
      Seq.concat_map
        (fun (x, _) -> Seq.map (fun tail -> (v.vname, x) :: tail) tails)
        (List.to_seq v.domain)
  in
  go t.vars

let valuation_prob t theta =
  List.fold_left
    (fun acc v ->
      let x = List.assoc v.vname theta in
      let p =
        match List.find_opt (fun (y, _) -> Value.equal x y) v.domain with
        | Some (_, p) -> p
        | None -> err "valuation assigns %s a value outside its domain" v.vname
      in
      Q.mul acc p)
    Q.one t.vars

let sample_valuation rng t =
  List.map
    (fun v ->
      let d = Dist.make ~compare:Value.compare v.domain in
      (v.vname, Dist.sample rng d))
    t.vars

let eval_term theta = function
  | TVar v -> (
    match List.assoc_opt v theta with
    | Some x -> x
    | None -> err "unbound variable %s in condition" v)
  | TLit x -> x

let rec eval_cond theta = function
  | CTrue -> true
  | CEq (a, b) -> Value.equal (eval_term theta a) (eval_term theta b)
  | CNeq (a, b) -> not (Value.equal (eval_term theta a) (eval_term theta b))
  | CAnd (a, b) -> eval_cond theta a && eval_cond theta b
  | COr (a, b) -> eval_cond theta a || eval_cond theta b
  | CNot a -> not (eval_cond theta a)

let instantiate t theta =
  List.fold_left
    (fun db (name, cols, rows) ->
      let tuples = List.filter_map (fun r -> if eval_cond theta r.cond then Some r.tuple else None) rows in
      Database.add name (Relation.make cols tuples) db)
    Database.empty t.tables

let worlds t =
  let pairs =
    Seq.fold_left
      (fun acc theta -> (instantiate t theta, valuation_prob t theta) :: acc)
      [] (valuations t)
  in
  Dist.make ~compare:Database.compare pairs

let certain db =
  {
    vars = [];
    tables =
      List.map
        (fun (name, r) ->
          ( name,
            Relation.columns r,
            List.rev (Relation.fold (fun tuple acc -> { tuple; cond = CTrue } :: acc) r []) ))
        (Database.bindings db);
  }

let num_worlds t = List.fold_left (fun acc v -> acc * List.length v.domain) 1 t.vars
