(** Compiled physical plans for the probabilistic algebra — the [repair-key]
    extension of {!Relational.Plan}.

    A transition kernel is fixed for the lifetime of a query while the
    engines evaluate it against thousands of states, so it is compiled
    once: deterministic (Repair_key-free) subtrees become
    {!Relational.Plan} plans, the remaining operators become positional
    closures via {!Relational.Plan.Ops}, and [repair-key] resolves its key
    and weight columns to positions feeding
    {!Repair_key.repair_at}/{!Repair_key.sample_at}.  All
    {!Relational.Relation.Schema_error}s are raised at compile time.

    Contract with the interpreter, for every database matching the
    compiled schemas:
    - [eval (compile ~schema_of e) db] = [Palgebra.eval e db] as an exact
      distribution (same support, same rational weights);
    - [sample rng (compile ~schema_of e) db] consumes the RNG stream
      exactly as [Palgebra.eval_sampled rng e db] does — deterministic
      subtrees draw nothing, samplers visit repair groups in the same
      order — so fixed-seed runs are bit-identical with and without plans.

    [~optimize] runs {!Optimize.expression} once at plan-build time, so an
    optimised kernel costs nothing extra per step.  Plans are immutable and
    safe to execute concurrently from several domains. *)

type t

val compile : ?optimize:bool -> schema_of:(string -> string list) -> Palgebra.t -> t
(** [compile ?optimize ~schema_of e]; [schema_of name] gives the column
    list of every relation [e] mentions (the kernel compiler's schema
    table, or the initial database's columns).  [optimize] defaults to
    [false]. *)

val schema : t -> string list

val eval : t -> Relational.Database.t -> Relational.Relation.t Dist.t
(** Exact evaluation; agrees with {!Palgebra.eval}. *)

val sample : Random.State.t -> t -> Relational.Database.t -> Relational.Relation.t
(** One sampled world; agrees draw-for-draw with {!Palgebra.eval_sampled}. *)

(** {2 Delta plans}

    The {!Relational.Plan.Delta} contract lifted to the probabilistic
    algebra.  Deterministic (Repair_key-free) expressions compile to a real
    delta plan; probabilistic expressions make a fresh independent choice
    per step, so — like delta-aggregate invalidation — they are never
    incremental and [delta_eval] falls back to full evaluation. *)

type delta

val compile_delta :
  ?optimize:bool -> schema_of:(string -> string list) -> Palgebra.t -> delta

val delta_base : delta -> t
(** The full plan over the same expression. *)

val delta_incremental : delta -> bool

val delta_eval :
  delta ->
  Relational.Database.t ->
  Relational.Database.t option ->
  Relational.Relation.t Dist.t
(** [delta_eval d db delta] — with [Some dd] and an incremental plan this
    is the (point) distribution of {!Relational.Plan.Delta.run_delta};
    with [None] (first step) or a non-incremental plan it is full
    evaluation, i.e. [eval (delta_base d) db]. *)

(** {2 Whole interpretations} *)

type interp
(** A compiled transition kernel: every rule of an {!Interp.t} compiled. *)

val compile_interp :
  ?optimize:bool -> schema_of:(string -> string list) -> Interp.t -> interp

val apply : interp -> Relational.Database.t -> Relational.Database.t Dist.t
(** Agrees with {!Interp.apply} as an exact distribution. *)

val apply_sampled :
  Random.State.t -> interp -> Relational.Database.t -> Relational.Database.t
(** Agrees draw-for-draw with {!Interp.apply_sampled}. *)

(** {2 Compiled-artifact cache}

    A small concurrent keyed cache for compiled artifacts (plans, prepared
    engine requests) shared across requests of a resident server.  Safe
    for concurrent use from several domains: plans are immutable, so one
    cached value may execute concurrently everywhere.  Eviction is FIFO at
    [capacity].  Hit/miss totals are kept intrinsically ({!Cache.stats})
    and also ticked as [Obs] counters ["<name>.hit"]/["<name>.miss"] when
    stats are enabled in the current scope. *)
module Cache : sig
  type 'a t

  val create : ?capacity:int -> string -> 'a t
  (** [create ~capacity name] — [name] prefixes the Obs counters; default
      capacity 64.  Raises [Invalid_argument] on non-positive capacity. *)

  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  (** [find_or_add t key build] returns the cached value under [key] or
      runs [build] (outside the cache lock — concurrent misses on the same
      key may build twice; the first insert wins) and caches its result. *)

  val stats : 'a t -> int * int * int
  (** (hits, misses, current entries) since creation. *)

  val clear : 'a t -> unit
end
