(** The [repair-key] operator of Koch's probabilistic algebra (§2.2), the
    probabilistic primitive of all the paper's languages.

    [repair-key ~A@P (R)] groups the tuples of [R] by their key value over
    columns [~A] and samples exactly one tuple per group, with probability
    proportional to the weight column [P] (uniform when [P] is omitted).
    The possible worlds are the maximal key repairs; groups are independent,
    so a world's probability is the product of its per-group choices. *)

exception Repair_error of string

val repair : key:string list -> ?weight:string -> Relational.Relation.t
  -> Relational.Relation.t Dist.t
(** Raises {!Repair_error} if a weight is not a positive number, or
    {!Relational.Relation.Schema_error} on unknown columns.  Tuples that
    agree on every non-weight column are first collapsed by summing their
    weights (the footnote-1 semantics restoring the functional dependency
    [schema(R) − P → P]).  The result schema equals the input schema. *)

val num_repairs : key:string list -> Relational.Relation.t -> int
(** Number of possible worlds ([Π] group sizes) without enumerating them. *)

val sample : Random.State.t -> key:string list -> ?weight:string
  -> Relational.Relation.t -> Relational.Relation.t
(** Draws one repair without materialising the distribution — the step the
    sampling engines (Thm 4.3, Thm 5.6) rely on to stay polynomial. *)

(** {2 Positional entry points}

    Used by compiled plans ({!Pplan}), which resolve the key and weight
    columns to positions once at plan-build time.  [repair ~key ?weight r]
    is exactly [repair_at] on the resolved positions (and likewise for
    {!sample}/{!sample_at}), so name-based and positional evaluation agree
    — including the RNG draw sequence: groups are visited in ascending key
    order either way. *)

val repair_at : key:int array -> ?weight:int -> Relational.Relation.t
  -> Relational.Relation.t Dist.t

val sample_at : Random.State.t -> key:int array -> ?weight:int
  -> Relational.Relation.t -> Relational.Relation.t
