(* Semi-naive (delta) stepping for the inflationary kernel.

   The naive kernel re-evaluates every rule body against the whole database
   each step.  Here each rule body is delta-compiled ({!Prob.Pplan.delta}):
   from the second step on, only tuples derived since the previous state
   flow through the joins.  Soundness rests on the [oldVals] bookkeeping:

     new_i  =  Δvals_i − __vals_i  =  vals_i(db) − __vals_i

   because __vals_i accumulates the valuations of *every* predecessor state
   on every path to [db] (so a tuple missing from __vals_i is missing from
   vals_i(prev), hence covered by the delta contract).  This also makes the
   step a function of [db] alone — the engine's memo table stays sound even
   though different paths reach [db] with different deltas.

   The head (projection + repair-key) is pre-compiled once against a
   pseudo-relation [__newvals<i>] and driven with the per-step new
   valuations, so probabilistic rules see exactly the same repair-key input
   relation as the naive kernel — choice distributions are identical. *)

module P = Prob.Palgebra
module Dist = Prob.Dist
module Relation = Relational.Relation
module Database = Relational.Database

type rule_plan = {
  vals_name : string;  (* __vals<i>, the rule's oldVals relation *)
  fresh_name : string;  (* __newvals<i>, the head plan's input leaf *)
  vals : Prob.Pplan.delta;
  head_pred : string;
  head : Prob.Pplan.t;
}

type t = {
  rules : rule_plan list;
  incremental_rules : int;
  total_rules : int;
}

let fresh_relation i = Printf.sprintf "__newvals%d" i

let compile ?optimize ~schema_of (program : Datalog.program) =
  let rules =
    List.mapi
      (fun i (r : Datalog.rule) ->
        let vals_expr, cols = Compile.rule_body_query ~schema_of r in
        let vals = Prob.Pplan.compile_delta ?optimize ~schema_of vals_expr in
        let fresh_name = fresh_relation i in
        let schema_of' name =
          if String.equal name fresh_name then cols else schema_of name
        in
        let head_expr = Compile.head_query ~schema_of:schema_of' r (P.Rel fresh_name) in
        {
          vals_name = Compile.vals_relation i;
          fresh_name;
          vals;
          head_pred = r.Datalog.head.Datalog.hpred;
          head = Prob.Pplan.compile ~schema_of:schema_of' head_expr;
        })
      program
  in
  {
    rules;
    incremental_rules =
      List.length (List.filter (fun rp -> Prob.Pplan.delta_incremental rp.vals) rules);
    total_rules = List.length rules;
  }

let incremental_rules t = t.incremental_rules
let total_rules t = t.total_rules

(* Rule bodies are deterministic by construction (repair-key lives in
   heads), so their delta evaluation is always a point distribution. *)
let point what d =
  match Dist.is_point d with
  | Some r -> r
  | None -> invalid_arg ("seminaive: probabilistic rule body feeding " ^ what)

let step t ~db ~delta =
  (* Per rule: the valuations that became derivable this step. *)
  let news =
    List.map
      (fun rp ->
        let seen = Database.find rp.vals_name db in
        let dv = point rp.head_pred (Prob.Pplan.delta_eval rp.vals db delta) in
        (rp, Relation.diff dv seen))
      t.rules
  in
  (* Advance the oldVals bookkeeping: __vals_i := __vals_i ∪ new_i. *)
  let base =
    List.fold_left
      (fun acc (rp, fresh) ->
        if Relation.is_empty fresh then acc
        else
          Database.add rp.vals_name (Relation.union (Database.find rp.vals_name acc) fresh) acc)
      db news
  in
  (* Head contributions — only rules with new valuations fire at all. *)
  let contribs =
    List.filter_map
      (fun (rp, fresh) ->
        if Relation.is_empty fresh then None
        else begin
          let input = Database.add rp.fresh_name fresh Database.empty in
          Some (rp.head_pred, Prob.Pplan.eval rp.head input)
        end)
      news
  in
  (* Fold contributions into (successor, successor − db) pairs.  The delta
     side is built from the genuinely new tuples of each contribution, so
     no full-relation diff ever runs. *)
  let apply_contrib (dbacc, dacc) pred r =
    let old = Database.find pred dbacc in
    let new_tuples = Relation.filter (fun tup -> not (Relation.mem tup old)) r in
    if Relation.is_empty new_tuples then (dbacc, dacc)
    else begin
      let grown =
        match Database.find_opt pred dacc with
        | Some prev -> Relation.union prev new_tuples
        | None -> new_tuples
      in
      (Database.add pred (Relation.union old new_tuples) dbacc, Database.add pred grown dacc)
    end
  in
  let compare_fst (a, _) (b, _) = Database.compare a b in
  List.fold_left
    (fun acc (pred, rdist) ->
      match Dist.is_point rdist with
      | Some r -> Dist.map ~compare:compare_fst (fun st -> apply_contrib st pred r) acc
      | None -> Dist.product ~compare:compare_fst (fun st r -> apply_contrib st pred r) acc rdist)
    (Dist.return (base, Database.empty))
    contribs

let stepper t : Forever.delta_stepper = fun ~db ~delta -> step t ~db ~delta

let install t q = Forever.with_delta q (stepper t)
