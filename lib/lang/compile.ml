module P = Prob.Palgebra
module Pred = Relational.Pred
module Relation = Relational.Relation
module Database = Relational.Database
module Value = Relational.Value

exception Compile_error of string

let err fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let canonical_columns k = List.init k (fun i -> Printf.sprintf "x%d" (i + 1))

(* The zero-column relation holding the empty tuple: "true". *)
let unit_relation = Relation.make [] [ Relational.Tuple.of_list [] ]

(* One atom: select on constants and repeated variables, project to the
   first occurrence of each variable, rename columns to variable names. *)
let atom_query ~schema_of (a : Datalog.atom) =
  let cols =
    try schema_of a.Datalog.pred
    with Not_found -> err "unknown predicate %s" a.Datalog.pred
  in
  if List.length cols <> List.length a.Datalog.args then
    err "predicate %s has arity %d, used with %d arguments" a.Datalog.pred (List.length cols)
      (List.length a.Datalog.args);
  let paired = List.combine cols a.Datalog.args in
  (* First column carrying each variable, in first-occurrence order. *)
  let firsts =
    List.fold_left
      (fun acc (col, arg) ->
        match arg with
        | Datalog.Const _ -> acc
        | Datalog.Var v -> if List.mem_assoc v acc then acc else acc @ [ (v, col) ])
      [] paired
  in
  let constraints =
    List.filter_map
      (fun (col, arg) ->
        match arg with
        | Datalog.Const v -> Some (Pred.eq (Pred.col col) (Pred.const v))
        | Datalog.Var v ->
          let first = List.assoc v firsts in
          if String.equal first col then None else Some (Pred.eq (Pred.col col) (Pred.col first)))
      paired
  in
  let selected =
    match constraints with
    | [] -> P.Rel a.Datalog.pred
    | c :: rest ->
      P.Select (List.fold_left (fun acc c -> Pred.And (acc, c)) c rest, P.Rel a.Datalog.pred)
  in
  let keep = List.map snd firsts in
  let vars = List.map fst firsts in
  let projected = P.Project (keep, selected) in
  (P.Rename (List.combine keep vars, projected), vars)

let body_query ~schema_of body =
  match body with
  | [] -> (P.Const unit_relation, [])
  | first :: rest ->
    let e0, vars0 = atom_query ~schema_of first in
    List.fold_left
      (fun (e, vars) atom ->
        let e', vars' = atom_query ~schema_of atom in
        let fresh = List.filter (fun v -> not (List.mem v vars)) vars' in
        (P.Join (e, e'), vars @ fresh))
      (e0, vars0) rest

(* Full rule body: positive join plus one anti-join per negated atom.
   Safety (validated upstream) guarantees the negated atom's variables are
   bound positively, so the anti-join is a semijoin-and-subtract. *)
let rule_body_query ~schema_of (r : Datalog.rule) =
  let pos, vars = body_query ~schema_of r.Datalog.body in
  let e =
    List.fold_left
      (fun e natom ->
        let ne, _ = atom_query ~schema_of natom in
        P.Diff (e, P.Project (vars, P.Join (e, ne))))
      pos r.Datalog.neg
  in
  (* Comparison guards become a selection over the variable columns. *)
  let e =
    match r.Datalog.constraints with
    | [] -> e
    | cs ->
      let term = function
        | Datalog.Var v -> Pred.Col v
        | Datalog.Const c -> Pred.Const c
      in
      let cmp = function
        | Datalog.Eq -> Pred.Eq
        | Datalog.Ne -> Pred.Neq
        | Datalog.Lt -> Pred.Lt
        | Datalog.Le -> Pred.Le
        | Datalog.Gt -> Pred.Gt
        | Datalog.Ge -> Pred.Ge
      in
      let preds =
        List.map
          (fun (c : Datalog.constraint_) ->
            Pred.Cmp (cmp c.Datalog.cmp, term c.Datalog.lhs, term c.Datalog.rhs))
          cs
      in
      P.Select (List.fold_left (fun acc p -> Pred.And (acc, p)) (List.hd preds) (List.tl preds), e)
  in
  (e, vars)

let head_column j = Printf.sprintf "#%d" j

(* Attach the head projection and repair-key to a valuations expression. *)
let head_query ~schema_of (r : Datalog.rule) vals =
  let head = r.Datalog.head in
  let target_cols =
    try schema_of head.Datalog.hpred
    with Not_found -> err "unknown head predicate %s" head.Datalog.hpred
  in
  if List.length target_cols <> List.length head.Datalog.hargs then
    err "head %s: arity mismatch with declared schema" head.Datalog.hpred;
  let extended, _ =
    List.fold_left
      (fun (e, j) (ha : Datalog.head_arg) ->
        let term =
          match ha.Datalog.term with
          | Datalog.Var v -> Pred.Col v
          | Datalog.Const c -> Pred.Const c
        in
        (P.Extend (head_column j, term, e), j + 1))
      (vals, 0) head.Datalog.hargs
  in
  let head_cols = List.mapi (fun j _ -> head_column j) head.Datalog.hargs in
  let probabilistic = Datalog.is_probabilistic_rule r in
  let chosen =
    if not probabilistic then P.Project (head_cols, extended)
    else begin
      let weight = head.Datalog.weight in
      let proj_cols =
        match weight with
        | Some w when not (List.mem w head_cols) -> head_cols @ [ w ]
        | Some _ | None -> head_cols
      in
      let keys =
        List.concat
          (List.mapi
             (fun j (ha : Datalog.head_arg) -> if ha.Datalog.is_key then [ head_column j ] else [])
             head.Datalog.hargs)
      in
      P.Project
        (head_cols, P.Repair_key { key = keys; weight; arg = P.Project (proj_cols, extended) })
    end
  in
  P.Rename (List.combine head_cols target_cols, chosen)

let rule_query ~schema_of r =
  Datalog.validate_rule r;
  let vals, _ = rule_body_query ~schema_of r in
  head_query ~schema_of r vals

(* Predicate schemas: prefer the input database, fall back to canonical
   columns from the arity table. *)
let schema_table program db =
  Datalog.validate program;
  let arity = Hashtbl.create 16 in
  List.iter
    (fun (r : Datalog.rule) ->
      Hashtbl.replace arity r.Datalog.head.Datalog.hpred (List.length r.Datalog.head.Datalog.hargs);
      List.iter
        (fun (a : Datalog.atom) -> Hashtbl.replace arity a.Datalog.pred (List.length a.Datalog.args))
        (r.Datalog.body @ r.Datalog.neg))
    program;
  fun pred ->
    match Database.find_opt pred db with
    | Some r -> Relation.columns r
    | None -> (
      match Hashtbl.find_opt arity pred with
      | Some k -> canonical_columns k
      | None -> raise Not_found)

(* Schema lookup against a concrete database — the schema table compiled
   kernels are planned against (their initial database names every relation
   the kernel mentions). *)
let schema_of_database db pred = Relation.columns (Database.find pred db)

let mentioned_predicates program =
  List.sort_uniq String.compare
    (List.concat_map
       (fun (r : Datalog.rule) ->
         r.Datalog.head.Datalog.hpred
         :: List.map (fun (a : Datalog.atom) -> a.Datalog.pred) (r.Datalog.body @ r.Datalog.neg))
       program)

let initial_database program db =
  let schema_of = schema_table program db in
  (* Every mentioned predicate needs a relation: IDB predicates start empty,
     and so does an EDB predicate the input happens to give no facts for. *)
  List.fold_left
    (fun db pred ->
      if Database.mem pred db then db else Database.add pred (Relation.empty (schema_of pred)) db)
    db
    (mentioned_predicates program)

let grouped_rules program =
  (* (head predicate, rules in program order with their global index). *)
  let indexed = List.mapi (fun i r -> (i, r)) program in
  List.map
    (fun pred ->
      (pred, List.filter (fun (_, (r : Datalog.rule)) -> String.equal r.Datalog.head.Datalog.hpred pred) indexed))
    (Datalog.idb_predicates program)

let union_all = function
  | [] -> err "internal: empty union"
  | e :: rest -> List.fold_left (fun acc e -> P.Union (acc, e)) e rest

let noninflationary_kernel program db =
  let schema_of = schema_table program db in
  let init = initial_database program db in
  let idb = Datalog.idb_predicates program in
  let edb_relations =
    List.filter (fun name -> not (List.mem name idb)) (Database.names init)
  in
  let idb_rules =
    List.map
      (fun (pred, rules) -> (pred, union_all (List.map (fun (_, r) -> rule_query ~schema_of r) rules)))
      (grouped_rules program)
  in
  let kernel = Prob.Interp.make (idb_rules @ List.map Prob.Interp.unchanged edb_relations) in
  (kernel, init)

let noninflationary_kernel_ctable program ct =
  let macro_rules, macro_db = Ctable_macro.kernel_rules ct in
  let macro_names = List.map fst macro_rules in
  List.iter
    (fun pred ->
      if List.mem pred macro_names then
        err "relation %s is both derived by rules and defined by the c-table" pred)
    (Datalog.idb_predicates program);
  let kernel, init = noninflationary_kernel program macro_db in
  (* Replace the unchanged-EDB rules of the c-table relations (and of the
     auxiliary choice relations) with the macro rules; keep the __var_x
     base tables unchanged. *)
  let bindings =
    List.map
      (fun (name, rule) ->
        match List.assoc_opt name macro_rules with
        | Some macro -> (name, macro)
        | None -> (name, rule))
      (Prob.Interp.bindings kernel)
  in
  let missing =
    List.filter (fun (name, _) -> not (List.mem_assoc name bindings)) macro_rules
  in
  (Prob.Interp.make (bindings @ missing), init)

let vals_prefix = "__vals"
let vals_relation i = Printf.sprintf "%s%d" vals_prefix i

let inflationary_initial program db =
  let schema_of = schema_table program db in
  let init = initial_database program db in
  List.fold_left
    (fun acc (i, (r : Datalog.rule)) ->
      let _, cols = rule_body_query ~schema_of r in
      Database.add (vals_relation i) (Relation.empty cols) acc)
    init
    (List.mapi (fun i r -> (i, r)) program)

let is_vals_name name =
  String.length name >= String.length vals_prefix
  && String.equal (String.sub name 0 (String.length vals_prefix)) vals_prefix

let inflationary_kernel program db =
  let schema_of = schema_table program db in
  let init = initial_database program db in
  let idb = Datalog.idb_predicates program in
  let edb_relations =
    List.filter
      (fun name -> (not (List.mem name idb)) && not (is_vals_name name))
      (Database.names init)
  in
  (* Per rule: its valuation expression and columns. *)
  let rule_vals =
    List.mapi
      (fun i (r : Datalog.rule) ->
        let vals, cols = rule_body_query ~schema_of r in
        (i, r, vals, cols))
      program
  in
  let init =
    List.fold_left
      (fun db (i, _, _, cols) -> Database.add (vals_relation i) (Relation.empty cols) db)
      init rule_vals
  in
  (* oldVals[i] := oldVals[i] ∪ vals_i(old state). *)
  let vals_updates =
    List.map
      (fun (i, _, vals, _) -> (vals_relation i, P.Union (P.Rel (vals_relation i), vals)))
      rule_vals
  in
  (* R := R ∪ ⋃ head(newVals[i]) where newVals[i] = vals_i − oldVals[i]. *)
  let contribution (i, r, vals, _) = head_query ~schema_of r (P.Diff (vals, P.Rel (vals_relation i))) in
  let idb_updates =
    List.map
      (fun pred ->
        let mine =
          List.filter
            (fun (_, (r : Datalog.rule), _, _) -> String.equal r.Datalog.head.Datalog.hpred pred)
            rule_vals
        in
        (pred, List.fold_left (fun acc rv -> P.Union (acc, contribution rv)) (P.Rel pred) mine))
      idb
  in
  let kernel =
    Prob.Interp.make (idb_updates @ vals_updates @ List.map Prob.Interp.unchanged edb_relations)
  in
  (kernel, init)

let strip_auxiliary db =
  List.fold_left
    (fun acc (name, r) -> if is_vals_name name then acc else Database.add name r acc)
    Database.empty (Database.bindings db)
