(** Non-inflationary ("forever") queries — Definition 3.2.

    A forever-query is a transition kernel [Q] (a probabilistic first-order
    interpretation) plus a query event [e].  Running [State := Q(State)]
    forever induces a random walk over database instances; the query result
    is the long-run average probability that [e] holds. *)

type t = {
  kernel : Prob.Interp.t;  (** the logical kernel — always present *)
  plan : Prob.Pplan.interp option;
      (** compiled physical plans for the kernel; when present, {!step} and
          {!step_sampled} execute them instead of interpreting [kernel] *)
  event : Event.t;
}

val make : kernel:Prob.Interp.t -> event:Event.t -> t
(** An interpreted query ([plan = None]). *)

val compile : ?optimize:bool -> schema_of:(string -> string list) -> t -> t
(** Compile the kernel to physical plans ({!Prob.Pplan.compile_interp});
    [schema_of] gives each mentioned relation's columns (e.g. from the
    initial database).  Stepping a compiled query yields identical
    distributions, and identical fixed-seed samples, as the interpreted
    query — the plans only change how each step executes.  Raises
    {!Relational.Relation.Schema_error} on schema violations the
    interpreter would only hit mid-run. *)

val interpreted : t -> t
(** Drop the compiled plans (ablation baseline). *)

val is_compiled : t -> bool

val step : t -> Relational.Database.t -> Relational.Database.t Prob.Dist.t
(** One application of the transition kernel. *)

val step_sampled : Random.State.t -> t -> Relational.Database.t -> Relational.Database.t

val is_inflationary_at : t -> Relational.Database.t -> bool
(** Whether every world of [Q(A)] contains [A] — Definition 3.4 checked at
    one state.  (The definition quantifies over all databases; engines use
    this dynamic check on the states they actually visit.) *)

val pp : Format.formatter -> t -> unit
