(** Non-inflationary ("forever") queries — Definition 3.2.

    A forever-query is a transition kernel [Q] (a probabilistic first-order
    interpretation) plus a query event [e].  Running [State := Q(State)]
    forever induces a random walk over database instances; the query result
    is the long-run average probability that [e] holds. *)

type delta_stepper =
  db:Relational.Database.t ->
  delta:Relational.Database.t option ->
  (Relational.Database.t * Relational.Database.t) Prob.Dist.t
(** A semi-naive stepper: given the current state and the delta since the
    previous state ([None] on the first step, forcing a full evaluation),
    return the distribution of [(successor, successor − current)] pairs.
    The successor distribution must equal {!step}'s exactly; the paired
    delta covers every IDB relation that grew.  Only meaningful for
    inflationary kernels, where states grow monotonically. *)

type t = {
  kernel : Prob.Interp.t;  (** the logical kernel — always present *)
  plan : Prob.Pplan.interp option;
      (** compiled physical plans for the kernel; when present, {!step} and
          {!step_sampled} execute them instead of interpreting [kernel] *)
  delta : delta_stepper option;
      (** semi-naive stepper (e.g. {!Seminaive.stepper}); engines that
          thread deltas use it instead of {!step}, others ignore it *)
  event : Event.t;
}

val make : kernel:Prob.Interp.t -> event:Event.t -> t
(** An interpreted query ([plan = None], [delta = None]). *)

val compile : ?optimize:bool -> schema_of:(string -> string list) -> t -> t
(** Compile the kernel to physical plans ({!Prob.Pplan.compile_interp});
    [schema_of] gives each mentioned relation's columns (e.g. from the
    initial database).  Stepping a compiled query yields identical
    distributions, and identical fixed-seed samples, as the interpreted
    query — the plans only change how each step executes.  Raises
    {!Relational.Relation.Schema_error} on schema violations the
    interpreter would only hit mid-run. *)

val interpreted : t -> t
(** Drop the compiled plans and the delta stepper (ablation baseline). *)

val is_compiled : t -> bool

val with_delta : t -> delta_stepper -> t
val without_delta : t -> t
(** [without_delta] keeps the plans but drops the semi-naive stepper — the
    [--naive] ablation. *)

val delta_stepper : t -> delta_stepper option

val step : t -> Relational.Database.t -> Relational.Database.t Prob.Dist.t
(** One application of the transition kernel. *)

val step_sampled : Random.State.t -> t -> Relational.Database.t -> Relational.Database.t

val is_inflationary_at : t -> Relational.Database.t -> bool
(** Whether every world of [Q(A)] contains [A] — Definition 3.4 checked at
    one state.  (The definition quantifies over all databases; engines use
    this dynamic check on the states they actually visit.) *)

val pp : Format.formatter -> t -> unit
