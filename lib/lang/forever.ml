type delta_stepper =
  db:Relational.Database.t ->
  delta:Relational.Database.t option ->
  (Relational.Database.t * Relational.Database.t) Prob.Dist.t

type t = {
  kernel : Prob.Interp.t;
  plan : Prob.Pplan.interp option;
  delta : delta_stepper option;
  event : Event.t;
}

let make ~kernel ~event = { kernel; plan = None; delta = None; event }

let compile ?optimize ~schema_of q =
  { q with plan = Some (Prob.Pplan.compile_interp ?optimize ~schema_of q.kernel) }

let interpreted q = { q with plan = None; delta = None }
let is_compiled q = Option.is_some q.plan

let with_delta q stepper = { q with delta = Some stepper }
let without_delta q = { q with delta = None }
let delta_stepper q = q.delta

let step q db =
  match q.plan with
  | Some p -> Prob.Pplan.apply p db
  | None -> Prob.Interp.apply q.kernel db

let step_sampled rng q db =
  match q.plan with
  | Some p -> Prob.Pplan.apply_sampled rng p db
  | None -> Prob.Interp.apply_sampled rng q.kernel db

let is_inflationary_at q db =
  List.for_all
    (fun (db', _) -> Relational.Database.subsumes db' db)
    (Prob.Dist.support (step q db))

let pp fmt q =
  Format.fprintf fmt "@[<v>forever {@,%a}@,event: %a@]" Prob.Interp.pp q.kernel Event.pp q.event
