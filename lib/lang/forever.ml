type t = {
  kernel : Prob.Interp.t;
  plan : Prob.Pplan.interp option;
  event : Event.t;
}

let make ~kernel ~event = { kernel; plan = None; event }

let compile ?optimize ~schema_of q =
  { q with plan = Some (Prob.Pplan.compile_interp ?optimize ~schema_of q.kernel) }

let interpreted q = { q with plan = None }
let is_compiled q = Option.is_some q.plan

let step q db =
  match q.plan with
  | Some p -> Prob.Pplan.apply p db
  | None -> Prob.Interp.apply q.kernel db

let step_sampled rng q db =
  match q.plan with
  | Some p -> Prob.Pplan.apply_sampled rng p db
  | None -> Prob.Interp.apply_sampled rng q.kernel db

let is_inflationary_at q db =
  List.for_all
    (fun (db', _) -> Relational.Database.subsumes db' db)
    (Prob.Dist.support (step q db))

let pp fmt q =
  Format.fprintf fmt "@[<v>forever {@,%a}@,event: %a@]" Prob.Interp.pp q.kernel Event.pp q.event
