(* Magic-sets demand rewrite relative to a ground query event.

   The event [~t ∈ R] asks about one ground tuple, so most of the kernel's
   work may be irrelevant.  The rewrite specialises the program to that
   demand in three passes:

   1. Dead-rule elimination: rules whose head predicate is unreachable
      from the event predicate (through positive or negated body atoms)
      cannot influence the event and are dropped.  Dropping probabilistic
      rules is sound because their repair-key choices are independent of
      the kept rules' — they marginalise out of the event probability.

   2. Probabilistic-safety ("total") closure.  Under the inflationary
      semantics, restricting *when* a tuple is derived changes

        - repair-key distributions: choices are made per new-valuations
          batch, so the batching itself is semantically relevant; and
        - rules with negation: [D(X) :- R(X), !T(X)] fires only while
          T(X) is still absent, so derivation timing is observable.

      Every predicate with a probabilistic rule, every rule mentioning
      negation (its head and its negated predicates), and — transitively —
      every predicate those rules read, therefore keeps its original,
      unrestricted rules.  Only the remaining purely-positive
      deterministic slice is demand-restricted; there the kernel computes
      a least fixpoint, which magic sets preserves for the demanded facts.

   3. Classical adornment of that slice, seeded at the event predicate
      with the all-bound adornment (the event tuple is ground).  Body
      atoms are reordered by a greedy sideways-information-passing
      heuristic so bindings actually reach the recursive atoms — e.g. in
      [R(Y) :- R(X), e(X, Y)] with Y bound, [e] is visited first and the
      rule becomes backward chaining. *)

module D = Datalog
module SS = Set.Make (String)

type stats = {
  rewritten : bool;
  dropped_rules : int;
  total_predicates : string list;
  adorned_predicates : int;
  magic_rules : int;
}

type t = {
  program : D.program;
  event : Event.t;
  stats : stats;
}

let program t = t.program
let event t = t.event
let stats t = t.stats

let pp_stats fmt s =
  Format.fprintf fmt "dropped %d rule(s); %d adorned predicate version(s); %d magic rule(s)%s"
    s.dropped_rules s.adorned_predicates s.magic_rules
    (match s.total_predicates with
    | [] -> ""
    | ps -> "; kept total: " ^ String.concat ", " ps)

let adorn_suffix a = String.concat "" (List.map (fun b -> if b then "b" else "f") a)
let adorned_name p a = p ^ "__" ^ adorn_suffix a
let magic_name p a = "__magic_" ^ p ^ "__" ^ adorn_suffix a

let atom_vars (a : D.atom) =
  List.filter_map (function D.Var v -> Some v | D.Const _ -> None) a.D.args

(* All predicate names a program mentions — used to refuse the rewrite if a
   generated name would collide with a user predicate. *)
let mentioned_predicates (program : D.program) =
  List.fold_left
    (fun acc (r : D.rule) ->
      List.fold_left
        (fun acc (a : D.atom) -> SS.add a.D.pred acc)
        (SS.add r.D.head.D.hpred acc)
        (r.D.body @ r.D.neg))
    SS.empty program

let unchanged ~dropped_rules ~total program event =
  {
    program;
    event;
    stats =
      {
        rewritten = dropped_rules > 0;
        dropped_rules;
        total_predicates = SS.elements total;
        adorned_predicates = 0;
        magic_rules = 0;
      };
  }

let rewrite ~(event : Event.t) (program : D.program) =
  let idb = SS.of_list (D.idb_predicates program) in
  let rules_of p =
    List.filter (fun (r : D.rule) -> String.equal r.D.head.D.hpred p) program
  in
  let body_preds (r : D.rule) =
    List.map (fun (a : D.atom) -> a.D.pred) (r.D.body @ r.D.neg)
  in
  (* Pass 1: predicates reachable from the event. *)
  let reachable =
    let rec go seen = function
      | [] -> seen
      | p :: rest when SS.mem p seen -> go seen rest
      | p :: rest ->
          let seen = SS.add p seen in
          let next =
            if SS.mem p idb then List.concat_map body_preds (rules_of p) else []
          in
          go seen (next @ rest)
    in
    go SS.empty [ event.Event.relation ]
  in
  let kept =
    List.filter (fun (r : D.rule) -> SS.mem r.D.head.D.hpred reachable) program
  in
  let dropped_rules = List.length program - List.length kept in
  (* Pass 2: the total closure. *)
  let total =
    let seed =
      List.concat_map
        (fun (r : D.rule) ->
          let negated = List.map (fun (a : D.atom) -> a.D.pred) r.D.neg in
          if D.is_probabilistic_rule r || r.D.neg <> [] then
            r.D.head.D.hpred :: negated
          else negated)
        kept
    in
    let rec close t =
      let t' =
        SS.fold
          (fun p acc ->
            if SS.mem p idb then
              List.fold_left
                (fun acc q -> SS.add q acc)
                acc
                (List.concat_map body_preds (rules_of p))
            else acc)
          t t
      in
      if SS.equal t t' then t else close t'
    in
    close (SS.of_list seed)
  in
  let restricted p =
    SS.mem p idb && SS.mem p reachable && not (SS.mem p total)
  in
  if not (restricted event.Event.relation) then
    (* Event over an EDB or total predicate: only dead-rule elimination. *)
    unchanged ~dropped_rules ~total:(SS.inter total reachable) kept event
  else begin
    (* Pass 3: adornment. *)
    let generated = ref SS.empty in
    let fresh name =
      generated := SS.add name !generated;
      name
    in
    let seen_adorn : (string * bool list, unit) Hashtbl.t = Hashtbl.create 16 in
    let queue = Queue.create () in
    let demand p a =
      if not (Hashtbl.mem seen_adorn (p, a)) then begin
        Hashtbl.add seen_adorn (p, a) ();
        Queue.add (p, a) queue
      end
    in
    let magic_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let magic_rules = ref [] in
    let add_magic (r : D.rule) =
      let key = Format.asprintf "%a" D.pp_rule r in
      if not (Hashtbl.mem magic_seen key) then begin
        Hashtbl.add magic_seen key ();
        magic_rules := r :: !magic_rules
      end
    in
    let adorned_rules = ref [] in
    (* Greedy SIP ordering: prefer atoms that can consume a binding —
       non-restricted ones first (cheap filters), then restricted ones
       (which propagate the binding into a magic set); among atoms sharing
       no bound variable, prefer non-restricted.  First in original order
       wins within a class. *)
    let sip_order boundset atoms =
      let shares bs (a : D.atom) =
        let vars = atom_vars a in
        vars = [] || List.exists (fun v -> SS.mem v bs) vars
      in
      let score bs a =
        match (restricted a.D.pred, shares bs a) with
        | false, true -> 0
        | true, true -> 1
        | false, false -> 2
        | true, false -> 3
      in
      let rec pick bs remaining ordered =
        match remaining with
        | [] -> List.rev ordered
        | _ ->
            let best =
              List.fold_left
                (fun acc a ->
                  let s = score bs a in
                  match acc with Some (_, sb) when sb <= s -> acc | _ -> Some (a, s))
                None remaining
            in
            let a = fst (Option.get best) in
            let remaining =
              let dropped = ref false in
              List.filter
                (fun a' ->
                  if (not !dropped) && a' == a then begin
                    dropped := true;
                    false
                  end
                  else true)
                remaining
            in
            let bs = List.fold_left (fun s v -> SS.add v s) bs (atom_vars a) in
            pick bs remaining (a :: ordered)
      in
      pick boundset atoms []
    in
    let process (p, a) =
      List.iter
        (fun (r : D.rule) ->
          let head_positions = List.combine r.D.head.D.hargs a in
          let magic_head_atom =
            {
              D.pred = fresh (magic_name p a);
              args =
                List.filter_map
                  (fun ((ha : D.head_arg), b) -> if b then Some ha.D.term else None)
                  head_positions;
            }
          in
          let boundset0 =
            List.fold_left
              (fun s ((ha : D.head_arg), b) ->
                match (b, ha.D.term) with
                | true, D.Var v -> SS.add v s
                | _ -> s)
              SS.empty head_positions
          in
          let ordered = sip_order boundset0 r.D.body in
          let rec walk bs prefix_rev transformed_rev = function
            | [] -> List.rev transformed_rev
            | (atom : D.atom) :: rest ->
                let atom' =
                  if restricted atom.D.pred then begin
                    let aq =
                      List.map
                        (function D.Const _ -> true | D.Var v -> SS.mem v bs)
                        atom.D.args
                    in
                    demand atom.D.pred aq;
                    let m_args =
                      List.filter_map
                        (fun (arg, b) -> if b then Some arg else None)
                        (List.combine atom.D.args aq)
                    in
                    add_magic
                      {
                        D.head =
                          D.deterministic_head (fresh (magic_name atom.D.pred aq)) m_args;
                        body = magic_head_atom :: List.rev prefix_rev;
                        neg = [];
                        constraints = [];
                      };
                    { atom with D.pred = fresh (adorned_name atom.D.pred aq) }
                  end
                  else atom
                in
                let bs =
                  List.fold_left (fun s v -> SS.add v s) bs (atom_vars atom)
                in
                walk bs (atom' :: prefix_rev) (atom' :: transformed_rev) rest
          in
          let body' = walk boundset0 [] [] ordered in
          adorned_rules :=
            {
              r with
              D.head = { r.D.head with D.hpred = fresh (adorned_name p a) };
              body = magic_head_atom :: body';
            }
            :: !adorned_rules)
        (rules_of p)
    in
    let event_values = Relational.Tuple.to_list event.Event.tuple in
    let all_bound = List.map (fun _ -> true) event_values in
    demand event.Event.relation all_bound;
    while not (Queue.is_empty queue) do
      process (Queue.pop queue)
    done;
    let seed_rule =
      {
        D.head =
          D.deterministic_head
            (fresh (magic_name event.Event.relation all_bound))
            (List.map (fun v -> D.Const v) event_values);
        body = [];
        neg = [];
        constraints = [];
      }
    in
    if not (SS.is_empty (SS.inter !generated (mentioned_predicates program))) then
      (* A generated name collides with a user predicate — refuse the
         adornment rather than risk capture. *)
      unchanged ~dropped_rules ~total:(SS.inter total reachable) kept event
    else begin
      let total_kept =
        List.filter (fun (r : D.rule) -> SS.mem r.D.head.D.hpred total) kept
      in
      let program' =
        total_kept @ List.rev !adorned_rules @ List.rev !magic_rules @ [ seed_rule ]
      in
      D.validate program';
      let event' =
        Event.make (adorned_name event.Event.relation all_bound) event_values
      in
      {
        program = program';
        event = event';
        stats =
          {
            rewritten = true;
            dropped_rules;
            total_predicates = SS.elements (SS.inter total reachable);
            adorned_predicates = Hashtbl.length seen_adorn;
            magic_rules = List.length !magic_rules + 1;
          };
      }
    end
  end
