(** Semi-naive (delta) stepping for the inflationary kernel.

    Compiles each rule of a program once into a delta plan for its body
    valuations ({!Prob.Pplan.compile_delta}) plus a head plan (projection,
    repair-key, rename) over a per-rule [__newvals<i>] pseudo-relation.
    {!step} then threads a [(db, delta)] pair through the fixpoint: from
    the second step on, only tuples derived since the previous state flow
    through the joins, while the successor {e distribution} is exactly the
    naive kernel's ({!Compile.inflationary_kernel} stepped by
    {!Forever.step}) — including repair-key choices, which see the same
    per-rule new-valuations relation either way.

    Rules whose bodies are not delta-compatible (negation compiles to
    [Diff], aggregates invalidate) silently fall back to full per-rule
    re-evaluation; {!incremental_rules} says how many rules got the real
    delta treatment. *)

type t

val compile :
  ?optimize:bool -> schema_of:(string -> string list) -> Datalog.program -> t
(** [schema_of] is the kernel compiler's schema table (e.g.
    {!Compile.schema_of_database} of the inflationary initial database).
    [optimize] (default false) runs {!Prob.Optimize.expression} on each
    body before delta compilation.  Raises the usual compile-time schema
    errors. *)

val incremental_rules : t -> int
(** Rules evaluated incrementally (monotone, delta-compiled bodies). *)

val total_rules : t -> int

val step :
  t ->
  db:Relational.Database.t ->
  delta:Relational.Database.t option ->
  (Relational.Database.t * Relational.Database.t) Prob.Dist.t
(** One semi-naive step — see {!Forever.delta_stepper} for the contract.
    [delta = None] (the initial state) forces a full evaluation of every
    rule body, so constant seed rules ([R(a) :- .]) fire. *)

val stepper : t -> Forever.delta_stepper

val install : t -> Forever.t -> Forever.t
(** [Forever.with_delta] with this stepper. *)
