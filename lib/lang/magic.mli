(** Magic-sets demand rewrite relative to a ground query event.

    [rewrite ~event program] specialises [program] to the demand posed by
    the membership event [~t ∈ R]: rules unreachable from [R] are dropped,
    and the purely-positive deterministic slice of the remainder is
    adorned (classical magic sets, greedy sideways-information-passing)
    so the fixpoint only derives facts relevant to [~t].

    Probabilistic rules, rules involving negation, and everything they
    transitively read are kept {e total} — evaluated exactly as in the
    original program — because under the inflationary semantics both
    repair-key batching and negation make derivation {e timing}
    observable.  Restricting only the monotone deterministic slice leaves
    the event's distribution unchanged while the kernel visits (weakly,
    and often strictly) fewer states.

    The rewrite targets the {e inflationary} semantics; engines must not
    apply it to non-inflationary queries, where IDB relations are
    destructively recomputed and dropping derivations is not
    conservative. *)

type stats = {
  rewritten : bool;  (** did the rewrite change the program at all? *)
  dropped_rules : int;  (** unreachable rules eliminated *)
  total_predicates : string list;
      (** reachable IDB predicates kept total (unrestricted) *)
  adorned_predicates : int;  (** distinct (predicate, adornment) versions *)
  magic_rules : int;  (** magic propagation rules, including the seed *)
}

type t

val rewrite : event:Event.t -> Datalog.program -> t
(** Never raises on valid input programs; if a generated predicate name
    ([R__bf], [__magic_R__bf]) would collide with a user predicate, the
    adornment is refused and only dead-rule elimination applies. *)

val program : t -> Datalog.program
val event : t -> Event.t
(** The event, moved onto the adorned predicate when adornment ran. *)

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
