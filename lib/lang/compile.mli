(** Compilation of probabilistic datalog to transition kernels.

    Each rule body compiles to a relational-algebra expression computing its
    valuations (the classical translation, [AHV95]); the head adds the
    [repair-key] application of Section 3.3.  Programs then become
    probabilistic first-order interpretations under either semantics:

    - {!noninflationary_kernel}: every IDB relation is destructively
      recomputed from the current state each step (Definition 3.2), so
      pc-table "macros" are re-sampled every iteration;
    - {!inflationary_kernel}: the paper's [newVals]/[oldVals] algorithm —
      per-rule auxiliary relations remember which body valuations have
      already been used, [repair-key] fires only on the new ones, and all
      updates are unions, so the kernel is inflationary and every run
      reaches a fixpoint. *)

exception Compile_error of string

val canonical_columns : int -> string list
(** [x1; ...; xk] — the schema given to relations datalog creates. *)

val body_query : schema_of:(string -> string list) -> Datalog.atom list -> Prob.Palgebra.t * string list
(** Valuations of a rule body: a deterministic expression whose columns are
    the body's distinct variables (second component, in first-occurrence
    order).  The empty body yields the zero-column relation containing the
    empty tuple. *)

val rule_body_query :
  schema_of:(string -> string list) -> Datalog.rule -> Prob.Palgebra.t * string list
(** Like {!body_query} but for a whole rule: negated atoms become
    anti-joins against the positive valuations. *)

val head_query :
  schema_of:(string -> string list) -> Datalog.rule -> Prob.Palgebra.t -> Prob.Palgebra.t
(** Attach the head of [rule] to a valuations expression (columns = the
    rule body's variables): extend with the head terms, project,
    [repair-key] for probabilistic rules, rename to the head relation's
    schema.  Exposed so the semi-naive stepper can drive a pre-compiled
    head over the per-step new valuations. *)

val rule_query : schema_of:(string -> string list) -> Datalog.rule -> Prob.Palgebra.t
(** The full translation of one rule: body valuations, projection onto the
    head-relevant columns, [repair-key] keyed on the marked arguments
    (skipped for deterministic rules), and projection/renaming to the head
    relation's schema — Example 3.7's correspondence. *)

val initial_database : Datalog.program -> Relational.Database.t -> Relational.Database.t
(** The input database extended with empty IDB relations (canonical
    columns) for IDB predicates it does not already define. *)

val schema_of_database : Relational.Database.t -> string -> string list
(** [schema_of_database db] is the schema table of a concrete database —
    what {!Forever.compile} (and {!Prob.Optimize}) need for a compiled
    kernel, whose initial database names every relation it mentions.
    Raises [Not_found] for an absent relation. *)

val noninflationary_kernel :
  Datalog.program -> Relational.Database.t -> Prob.Interp.t * Relational.Database.t
(** Kernel plus extended initial database.  EDB relations are carried
    unchanged; each IDB relation is reassigned the union of its rules'
    results. *)

val noninflationary_kernel_ctable :
  Datalog.program -> Prob.Ctable.t -> Prob.Interp.t * Relational.Database.t
(** Non-inflationary semantics over a probabilistic c-table input
    (Section 3.1): the c-table relations become kernel rules that re-sample
    the random variables and re-materialise the conditional tuples at every
    step ({!Ctable_macro}).  Raises {!Compile_error} if a c-table relation
    is also an IDB predicate. *)

val vals_relation : int -> string
(** Name of the auxiliary [oldVals] relation of rule [i]. *)

val inflationary_initial : Datalog.program -> Relational.Database.t -> Relational.Database.t
(** Just the initial-state extension of {!inflationary_kernel}: empty IDB
    relations plus one empty [oldVals] relation per rule. *)

val inflationary_kernel :
  Datalog.program -> Relational.Database.t -> Prob.Interp.t * Relational.Database.t
(** The Section 3.3 evaluation loop as a kernel over an extended state that
    includes one [oldVals] relation per rule.  All updates are unions, so
    the result always passes {!Inflationary.of_forever}. *)

val strip_auxiliary : Relational.Database.t -> Relational.Database.t
(** Drops the [oldVals] relations, recovering the visible database. *)
