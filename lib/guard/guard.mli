(** Resource governance for long evaluations: cooperative budgets
    (wall-clock deadline, explored-state budget, sample budget), a global
    interrupt flag for SIGINT handling, deterministic fault injection for
    the worker pool ({!Fault}) and versioned sampler checkpoints
    ({!Checkpoint}).

    Contract (same as [Obs]): evaluation sites consult the guard once when
    they build their closures — {!state_tick}, {!sample_tick} and
    {!stop_check} return [None] for an inactive guard, so the executed hot
    loop with governance off is exactly the unguarded one.  An active
    guard's checks run once per expanded state / drawn sample, never per
    tuple.

    Budget exhaustion raises {!Exhausted} carrying a structured
    {!type-reason}; callers catch it at an engine boundary and turn it into
    a partial result.  A guard is single-run state: build one per
    [Engine.run] call and do not share an active guard between concurrent
    runs (the counters are plain mutable fields; worker pools charge
    samples through their own shard totals instead). *)

type reason =
  | Deadline of { budget_ms : float; elapsed_ms : float }
  | States of { budget : int; reached : int }
  | Samples of { budget : int; completed : int }
  | Interrupted

exception Exhausted of reason

val describe : reason -> string
(** Human-readable one-liner, e.g.
    ["state budget exhausted: reached 1024 states (budget 1000)"]. *)

val reason_slug : reason -> string
(** Machine key for reports: ["deadline"] | ["state-budget"] |
    ["sample-budget"] | ["interrupted"]. *)

type t

val unlimited : t
(** The inactive guard: every checker returns [None], nothing is ever
    charged or checked.  This is the default everywhere. *)

val make :
  ?deadline_ms:float -> ?max_states:int -> ?max_samples:int -> unit -> t
(** An active guard.  The deadline clock starts at [make] time and reads
    the monotonic [Obs.now_ns] high-water clock, never [gettimeofday]
    directly — a wall-clock step (NTP, manual set) in a resident process
    can neither fire a deadline early nor defer it indefinitely, and
    remaining budget never reads negative.  A guard with no budgets at all
    still watches the {!interrupt} flag — build one when checkpointing or
    handling SIGINT without resource limits. *)

val remaining_ms : t -> float option
(** Milliseconds left on the deadline budget, clamped at [0.]; [None] when
    the guard has no deadline.  Monotone non-increasing across calls. *)

val active : t -> bool

val state_budget : t -> int option
val sample_budget : t -> int option
val deadline_ms : t -> float option

val states_reached : t -> int
(** States charged so far via {!state_tick} (0 for [unlimited]). *)

val state_tick : t -> (unit -> unit) option
(** [None] iff the guard is inactive.  The returned closure charges one
    explored state and raises {!Exhausted} when the state budget is
    exceeded, the deadline has passed, or an interrupt/cancel was
    requested.  Deadline/interrupt are polled on every call (one latched
    [Obs.now_ns] read — fine at per-state granularity). *)

val sample_tick : t -> (unit -> unit) option
(** Like {!state_tick} for one drawn sample against the sample budget.
    Sequential samplers use this; {!Eval.Pool} instead clamps shard quotas
    up front and uses {!stop_check}. *)

val stop_check : t -> (unit -> unit) option
(** Deadline + interrupt only: charges nothing.  [None] iff inactive. *)

val deadline_exceeded : t -> bool
val deadline_reason : t -> reason
(** The [Deadline] reason with the current elapsed time.  Meaningful only
    for a guard with a deadline; raises [Invalid_argument] otherwise. *)

(** {2 Interrupt flag}

    Process-global, set from a signal handler ([Sys.Signal_handle] runs in
    the main OCaml execution context, so an atomic set is safe) and polled
    by every active guard's checkers. *)

val request_interrupt : unit -> unit
val interrupted : unit -> bool
val clear_interrupt : unit -> unit

val cancel : t -> unit
(** Per-guard cancellation: the guard's checkers raise
    [Exhausted Interrupted] at their next poll, without touching the
    process-global interrupt flag other concurrent runs watch — this is how
    a server cancels one request.  Meaningful only for an active guard
    ({!unlimited} has no checkers). *)

val cancelled : t -> bool

(** {2 Deterministic fault injection}

    Test-only failures for {!Eval.Pool} workers, enabled via the
    [PROBDB_FAULT] environment variable (or an explicit spec in tests) so
    production binaries never pay for them.  Spec grammar, [';']-separated:
    {v
      kill:shard=K,after=N    raise Injected in shard K before sample N+1
      delay:shard=K,ms=M      sleep M ms before each of shard K's samples
      flaky:shard=K,after=N   raise Transient once (first attempt only)
    v}

    Serve-layer faults (consumed by the daemon's session loop and journal,
    invisible to pool workers — {!Fault.hook} never fires on them):
    {v
      conn-drop:after=N         close the connection after N responses
      partial-write:after=N     write a torn prefix of response N+1, then close
      resp-delay:ms=M           sleep M ms before each response write
      journal-crash:point=P     raise Injected at journal point P, where P is
                                pre-write | mid-record | pre-rename | post-rename
    v} *)
module Fault : sig
  exception Injected of string
  (** A permanent injected failure — never retried. *)

  exception Transient of string
  (** A transient injected failure — the pool retries the shard once. *)

  type spec

  val none : spec
  val is_none : spec -> bool

  val of_string : string -> spec
  (** Parses the grammar above; raises [Invalid_argument] on a malformed
      spec. *)

  val of_env : unit -> spec
  (** [PROBDB_FAULT] when set (malformed values raise [Invalid_argument]),
      {!none} otherwise. *)

  val to_string : spec -> string

  val hook : spec -> shard:int -> (attempt:int -> completed:int -> unit) option
  (** [None] when no fault targets [shard] — the pool then runs its
      fault-free loop.  Otherwise a closure called before every sample with
      the retry attempt (0, then 1 after a transient) and the number of
      samples completed so far in this attempt.  Serve-layer faults never
      match a shard. *)

  (** {3 Serve-layer accessors}

      Queried by the daemon; [None] / [false] when the spec carries no
      fault of that kind. *)

  val conn_drop : spec -> int option
  (** Responses to serve before dropping the connection. *)

  val partial_write : spec -> int option
  (** Responses to serve intact before writing a torn prefix and closing. *)

  val resp_delay_ms : spec -> float option
  (** Sleep this long before every response write. *)

  val journal_crash : spec -> point:string -> bool
  (** Whether the spec asks for a simulated crash ({!Injected}) at the named
      journal point ([pre-write] | [mid-record] | [pre-rename] |
      [post-rename]). *)
end

(** {2 Sampler checkpoints}

    Versioned snapshot of a pool run's per-shard progress: hit counts and
    RNG states.  Format: one magic line ["probdb.ckpt/1\n"] followed by a
    [Marshal]ed {!Checkpoint.t}.  Saves are atomic (unique temp file —
    pid + counter, so concurrent savers to one target never truncate each
    other — flushed, then renamed; the temp is unlinked on failure), so a
    checkpoint file is always either absent, the previous snapshot, or
    a complete new one — never torn.  Resuming replays each shard from its saved
    RNG state, which makes a resumed run bit-identical to an uninterrupted
    one at any domain count (shard layout depends only on the workload). *)
module Checkpoint : sig
  exception Error of string

  type shard_state = {
    shard : int;
    todo : int;  (** this shard's full quota in the uninterrupted run *)
    completed : int;
    hits : int;
    rng : Random.State.t;  (** state after [completed] samples *)
  }

  type t = {
    key : string;
        (** fingerprint of (program, seed, method parameters); resume
            refuses a mismatched key *)
    samples : int;  (** total requested samples across all shards *)
    shards : shard_state array;
  }

  val magic : string

  val save : string -> t -> unit
  val load : string -> t
  (** Raises {!Error} on a missing file, bad magic or undecodable body. *)
end
