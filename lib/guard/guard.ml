type reason =
  | Deadline of { budget_ms : float; elapsed_ms : float }
  | States of { budget : int; reached : int }
  | Samples of { budget : int; completed : int }
  | Interrupted

exception Exhausted of reason

let describe = function
  | Deadline { budget_ms; elapsed_ms } ->
      Printf.sprintf "deadline exceeded: %.0f ms elapsed (budget %.0f ms)"
        elapsed_ms budget_ms
  | States { budget; reached } ->
      Printf.sprintf "state budget exhausted: reached %d states (budget %d)"
        reached budget
  | Samples { budget; completed } ->
      Printf.sprintf "sample budget exhausted: completed %d samples (budget %d)"
        completed budget
  | Interrupted -> "interrupted"

let reason_slug = function
  | Deadline _ -> "deadline"
  | States _ -> "state-budget"
  | Samples _ -> "sample-budget"
  | Interrupted -> "interrupted"

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some (Printf.sprintf "Guard.Exhausted(%s)" (describe r))
    | _ -> None)

type t = {
  active : bool;
  started_ns : int;  (* Obs.now_ns at make *)
  deadline_ms : float option;
  state_budget : int option;
  sample_budget : int option;
  mutable states : int;
  mutable samples : int;
  cancelled : bool Atomic.t;
}

let unlimited =
  {
    active = false;
    started_ns = 0;
    deadline_ms = None;
    state_budget = None;
    sample_budget = None;
    states = 0;
    samples = 0;
    cancelled = Atomic.make false;
  }

let make ?deadline_ms ?max_states ?max_samples () =
  {
    active = true;
    started_ns = Obs.now_ns ();
    deadline_ms;
    state_budget = max_states;
    sample_budget = max_samples;
    states = 0;
    samples = 0;
    cancelled = Atomic.make false;
  }

let active g = g.active
let state_budget g = g.state_budget
let sample_budget g = g.sample_budget
let deadline_ms g = g.deadline_ms
let states_reached g = g.states

(* Process-global interrupt flag, set from the SIGINT handler. *)
let interrupt = Atomic.make false
let request_interrupt () = Atomic.set interrupt true
let interrupted () = Atomic.get interrupt
let clear_interrupt () = Atomic.set interrupt false

(* Per-guard cancellation: a resident server cancels one request's guard
   without touching the process-global interrupt flag other sessions poll. *)
let cancel g = Atomic.set g.cancelled true
let cancelled g = Atomic.get g.cancelled

(* All deadline arithmetic reads the Obs.now_ns high-water clock, never
   gettimeofday directly: the latched clock is monotone across NTP steps, so
   in a resident process a wall-clock step backwards can no longer defer a
   deadline indefinitely (nor make a fresh budget read negative) — elapsed
   time is a difference of two non-decreasing readings taken after
   [started_ns], hence >= 0 always. *)
let elapsed_ms g = Obs.ms_of_ns (Obs.now_ns () - g.started_ns)

let remaining_ms g =
  match g.deadline_ms with
  | None -> None
  | Some budget_ms -> Some (Float.max 0. (budget_ms -. elapsed_ms g))

let deadline_exceeded g =
  match g.deadline_ms with
  | None -> false
  | Some budget_ms -> elapsed_ms g > budget_ms

let deadline_reason g =
  match g.deadline_ms with
  | None -> invalid_arg "Guard.deadline_reason: guard has no deadline"
  | Some budget_ms -> Deadline { budget_ms; elapsed_ms = elapsed_ms g }

(* Deadline + interrupt poll shared by every checker.  One latched clock
   read costs ~30ns — negligible against one state expansion or one sampled
   trajectory, which is the granularity these run at. *)
let check_stop g =
  if Atomic.get interrupt || Atomic.get g.cancelled then
    raise (Exhausted Interrupted);
  match g.deadline_ms with
  | None -> ()
  | Some budget_ms ->
      let elapsed_ms = elapsed_ms g in
      if elapsed_ms > budget_ms then
        raise (Exhausted (Deadline { budget_ms; elapsed_ms }))

let state_tick g =
  if not g.active then None
  else
    Some
      (fun () ->
        check_stop g;
        g.states <- g.states + 1;
        match g.state_budget with
        | Some budget when g.states > budget ->
            raise (Exhausted (States { budget; reached = g.states }))
        | _ -> ())

let sample_tick g =
  if not g.active then None
  else
    Some
      (fun () ->
        check_stop g;
        g.samples <- g.samples + 1;
        match g.sample_budget with
        | Some budget when g.samples > budget ->
            raise (Exhausted (Samples { budget; completed = g.samples - 1 }))
        | _ -> ())

let stop_check g = if not g.active then None else Some (fun () -> check_stop g)

module Fault = struct
  exception Injected of string
  exception Transient of string

  let () =
    Printexc.register_printer (function
      | Injected m -> Some (Printf.sprintf "Guard.Fault.Injected(%s)" m)
      | Transient m -> Some (Printf.sprintf "Guard.Fault.Transient(%s)" m)
      | _ -> None)

  type fault =
    | Kill of { shard : int; after : int }
    | Delay of { shard : int; ms : float }
    | Flaky of { shard : int; after : int }
    | Conn_drop of { after : int }
    | Partial_write of { after : int }
    | Resp_delay of { ms : float }
    | Journal_crash of { point : string }

  type spec = fault list

  let none = []
  let is_none s = s = []

  let journal_points = [ "pre-write"; "mid-record"; "pre-rename"; "post-rename" ]

  let fault_to_string = function
    | Kill { shard; after } -> Printf.sprintf "kill:shard=%d,after=%d" shard after
    | Delay { shard; ms } -> Printf.sprintf "delay:shard=%d,ms=%g" shard ms
    | Flaky { shard; after } -> Printf.sprintf "flaky:shard=%d,after=%d" shard after
    | Conn_drop { after } -> Printf.sprintf "conn-drop:after=%d" after
    | Partial_write { after } -> Printf.sprintf "partial-write:after=%d" after
    | Resp_delay { ms } -> Printf.sprintf "resp-delay:ms=%g" ms
    | Journal_crash { point } -> Printf.sprintf "journal-crash:point=%s" point

  let to_string s = String.concat ";" (List.map fault_to_string s)

  let bad spec msg =
    invalid_arg (Printf.sprintf "Guard.Fault: bad spec %S (%s)" spec msg)

  (* "kill:shard=2,after=10" -> Kill {shard=2; after=10} *)
  let parse_fault item =
    match String.index_opt item ':' with
    | None -> bad item "expected KIND:key=value,..."
    | Some i ->
        let kind = String.sub item 0 i in
        let rest = String.sub item (i + 1) (String.length item - i - 1) in
        let kvs =
          String.split_on_char ',' rest
          |> List.map (fun kv ->
                 match String.index_opt kv '=' with
                 | None -> bad item (Printf.sprintf "missing '=' in %S" kv)
                 | Some j ->
                     ( String.sub kv 0 j,
                       String.sub kv (j + 1) (String.length kv - j - 1) ))
        in
        let int_field k =
          match List.assoc_opt k kvs with
          | None -> bad item (Printf.sprintf "missing field %S" k)
          | Some v -> (
              match int_of_string_opt v with
              | Some n when n >= 0 -> n
              | _ -> bad item (Printf.sprintf "field %s=%S is not a count" k v))
        in
        let float_field k =
          match List.assoc_opt k kvs with
          | None -> bad item (Printf.sprintf "missing field %S" k)
          | Some v -> (
              match float_of_string_opt v with
              | Some f when f >= 0. -> f
              | _ -> bad item (Printf.sprintf "field %s=%S is not a duration" k v))
        in
        let str_field k =
          match List.assoc_opt k kvs with
          | None -> bad item (Printf.sprintf "missing field %S" k)
          | Some v -> v
        in
        (match kind with
        | "kill" -> Kill { shard = int_field "shard"; after = int_field "after" }
        | "delay" -> Delay { shard = int_field "shard"; ms = float_field "ms" }
        | "flaky" -> Flaky { shard = int_field "shard"; after = int_field "after" }
        | "conn-drop" -> Conn_drop { after = int_field "after" }
        | "partial-write" -> Partial_write { after = int_field "after" }
        | "resp-delay" -> Resp_delay { ms = float_field "ms" }
        | "journal-crash" ->
            let point = str_field "point" in
            if not (List.mem point journal_points) then
              bad item
                (Printf.sprintf "unknown journal crash point %S (expected %s)"
                   point
                   (String.concat "|" journal_points));
            Journal_crash { point }
        | k -> bad item (Printf.sprintf "unknown fault kind %S" k))

  let of_string s =
    String.split_on_char ';' s
    |> List.filter_map (fun item ->
           let item = String.trim item in
           if item = "" then None else Some (parse_fault item))

  let of_env () =
    match Sys.getenv_opt "PROBDB_FAULT" with
    | None | Some "" -> none
    | Some s -> of_string s

  (* Serve-layer faults have no shard: [shard_of] maps them to -1, which no
     pool worker ever matches (shards are numbered from 0), so a serve spec
     in PROBDB_FAULT cannot leak into the sampler pool and vice versa. *)
  let shard_of = function
    | Kill { shard; _ } | Delay { shard; _ } | Flaky { shard; _ } -> shard
    | Conn_drop _ | Partial_write _ | Resp_delay _ | Journal_crash _ -> -1

  let conn_drop spec =
    List.find_map (function Conn_drop { after } -> Some after | _ -> None) spec

  let partial_write spec =
    List.find_map
      (function Partial_write { after } -> Some after | _ -> None)
      spec

  let resp_delay_ms spec =
    List.find_map (function Resp_delay { ms } -> Some ms | _ -> None) spec

  let journal_crash spec ~point =
    List.exists (function Journal_crash { point = p } -> p = point | _ -> false) spec

  let hook spec ~shard =
    match List.filter (fun f -> shard_of f = shard) spec with
    | [] -> None
    | faults ->
        Some
          (fun ~attempt ~completed ->
            List.iter
              (function
                | Kill { after; _ } ->
                    if completed >= after then
                      raise
                        (Injected
                           (Printf.sprintf
                              "injected kill in shard %d after %d samples"
                              shard after))
                | Delay { ms; _ } -> Unix.sleepf (ms /. 1000.)
                | Flaky { after; _ } ->
                    if attempt = 0 && completed >= after then
                      raise
                        (Transient
                           (Printf.sprintf
                              "injected transient fault in shard %d after %d \
                               samples"
                              shard after))
                | Conn_drop _ | Partial_write _ | Resp_delay _
                | Journal_crash _ ->
                    (* serve-layer faults are consumed by the daemon's
                       session/journal code, never by pool workers *)
                    ())
              faults)
end

module Checkpoint = struct
  exception Error of string

  let () =
    Printexc.register_printer (function
      | Error m -> Some (Printf.sprintf "Guard.Checkpoint.Error(%s)" m)
      | _ -> None)

  type shard_state = {
    shard : int;
    todo : int;
    completed : int;
    hits : int;
    rng : Random.State.t;
  }

  type t = { key : string; samples : int; shards : shard_state array }

  let magic = "probdb.ckpt/1"

  (* Tmp names must be unique per writer: a fixed [path ^ ".tmp"] lets two
     concurrent savers (daemon sessions checkpointing the same target)
     truncate each other mid-Marshal and rename a torn body into place.
     pid + a process-wide counter disambiguates both across processes and
     across domains within one; the rename itself is atomic, so the target
     is always absent, the previous snapshot, or a complete new one. *)
  let tmp_counter = Atomic.make 0

  let save path t =
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Atomic.fetch_and_add tmp_counter 1)
    in
    let oc = open_out_bin tmp in
    (try
       Fun.protect
         ~finally:(fun () -> close_out oc)
         (fun () ->
           output_string oc magic;
           output_char oc '\n';
           Marshal.to_channel oc t [];
           flush oc);
       Sys.rename tmp path
     with e ->
       (* Never leave an orphaned tmp behind a failed write or rename. *)
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e)

  let load path =
    let oc =
      try open_in_bin path
      with Sys_error m -> raise (Error (Printf.sprintf "cannot open checkpoint: %s" m))
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr oc)
      (fun () ->
        let line = try input_line oc with End_of_file -> "" in
        if line <> magic then
          raise
            (Error
               (Printf.sprintf "%s: bad checkpoint magic %S (expected %S)" path
                  line magic));
        match (Marshal.from_channel oc : t) with
        | t -> t
        | exception _ ->
            raise (Error (Printf.sprintf "%s: undecodable checkpoint body" path)))
end
