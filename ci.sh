#!/bin/sh
# Continuous-integration entry point: full build + test suite, then a CLI
# smoke pass over every example program in both execution modes (compiled
# physical plans, the default, and --interpreted, the AST-walking ablation
# baseline) asserting identical answers, plus a probmc estimate smoke on
# the example chain files.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

PROBDL=_build/default/bin/probdl.exe
PROBMC=_build/default/bin/probmc.exe

# Per-program semantics: walk kernels and re-flipped pc-tables only make
# sense non-inflationary; everything else runs inflationary.
semantics_of () {
  case "$(basename "$1")" in
    coin_flip.pdl | walk_distribution.pdl) echo noninflationary ;;
    *) echo inflationary ;;
  esac
}

echo "== probdl smoke: plans vs interpreted =="
for prog in examples/programs/*.pdl; do
  sem=$(semantics_of "$prog")
  planned=$("$PROBDL" run "$prog" -s "$sem" --seed 7)
  interpreted=$("$PROBDL" run "$prog" -s "$sem" --seed 7 --interpreted)
  # Only the plan diagnostic row may differ between the two modes.
  if [ "$(printf '%s\n' "$planned" | grep -v '^plan')" != \
       "$(printf '%s\n' "$interpreted" | grep -v '^plan')" ]; then
    echo "MISMATCH between compiled and interpreted on $prog" >&2
    printf '%s\n--- vs ---\n%s\n' "$planned" "$interpreted" >&2
    exit 1
  fi
  echo "ok: $prog ($sem)"
done

echo "== probdl smoke: evaluation strategies =="
# The three fixpoint strategies — --naive saturating steps, the default
# semi-naive deltas, and --magic demand rewriting — must agree on every
# answer for every example program.  Only the strategy diagnostics rows
# (plan strategy, magic stats, visited-state counts) and the structural
# rows describing the possibly-rewritten program may differ.
strategy_answer () {
  "$PROBDL" run "$2" -s "$3" --seed 7 $1 \
    | grep -vE '^(plan|magic|states visited|fixpoints|rules|linear|repair-key)'
}
for prog in examples/programs/*.pdl; do
  sem=$(semantics_of "$prog")
  default=$(strategy_answer "" "$prog" "$sem")
  naive=$(strategy_answer "--naive" "$prog" "$sem")
  magic=$(strategy_answer "--magic" "$prog" "$sem")
  if [ "$default" != "$naive" ] || [ "$default" != "$magic" ]; then
    echo "STRATEGY MISMATCH on $prog" >&2
    printf 'default:\n%s\n--naive:\n%s\n--magic:\n%s\n' "$default" "$naive" "$magic" >&2
    exit 1
  fi
  echo "ok: $prog ($sem) default/--naive/--magic agree"
done

echo "== probmc smoke =="
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 \
  examples/chains/barbell.mc > /dev/null
"$PROBMC" estimate --target p3 --start p1 --samples 200 --burn-in 50 \
  examples/chains/gambler.mc > /dev/null
echo "ok: examples/chains/*.mc"

echo "== stats-json smoke =="
# The probdb.stats/3 documents must parse as JSON and carry the core keys,
# including the /3 outcome and downgrade fields.
check_stats_json () {
  python3 -c '
import json, sys
doc = json.load(sys.stdin)
for key in ("engine", "steps", "draws", "elapsed_ms", "outcome", "downgrade"):
    if key not in doc:
        sys.exit(f"missing key {key!r} in stats JSON")
schema = doc.get("schema")
if schema != "probdb.stats/3":
    sys.exit(f"unexpected schema {schema!r}")
if doc["outcome"].get("status") not in ("complete", "partial"):
    sys.exit(f"bad outcome {doc['outcome']!r}")
' || { echo "stats JSON check failed for $1" >&2; exit 1; }
}
"$PROBDL" run examples/programs/coin_flip.pdl -s noninflationary --seed 7 --stats-json \
  | check_stats_json coin_flip.pdl
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 --stats-json \
  examples/chains/barbell.mc | check_stats_json barbell.mc
echo "ok: --stats-json documents parse with engine/steps/draws/elapsed_ms/outcome/downgrade"

echo "== trace smoke =="
# --trace files must be valid Chrome trace-event JSON: known phase values,
# balanced B/E spans per track, non-decreasing integer timestamps per track,
# pid = tid, and the probdb.series/1 block riding along.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
check_trace_json () {
  python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
if not events:
    sys.exit("empty traceEvents")
depth, last_ts = {}, {}
for e in events:
    ph, tid, ts = e["ph"], e["tid"], e["ts"]
    if ph not in ("B", "E", "X", "i"):
        sys.exit(f"unknown ph {ph!r}")
    if not isinstance(ts, int) or ts < 0:
        sys.exit(f"bad ts {ts!r}")
    if e["pid"] != tid:
        sys.exit("pid != tid")
    if ts < last_ts.get(tid, 0):
        sys.exit(f"ts went backwards on tid {tid}")
    last_ts[tid] = ts
    if ph == "B":
        depth[tid] = depth.get(tid, 0) + 1
    elif ph == "E":
        depth[tid] = depth.get(tid, 0) - 1
        if depth[tid] < 0:
            sys.exit(f"E without B on tid {tid}")
    elif ph == "X" and (not isinstance(e["dur"], int) or e["dur"] < 0):
        sys.exit(f"bad dur {e['dur']!r}")
for tid, d in depth.items():
    if d != 0:
        sys.exit(f"unbalanced spans on tid {tid}")
if doc["series"]["schema"] != "probdb.series/1":
    sys.exit(f"unexpected series schema {doc['series']['schema']!r}")
' "$1" || { echo "trace JSON check failed for $2" >&2; exit 1; }
}
# Exact chain construction (the E4 shape): per-BFS-level instants.
"$PROBDL" run examples/programs/walk_distribution.pdl -s noninflationary --seed 7 \
  --trace "$TRACE_TMP/pdl.json" > /dev/null
check_trace_json "$TRACE_TMP/pdl.json" walk_distribution.pdl
# Sharded sampling: one pool.shard span per shard plus estimate series.
"$PROBMC" estimate --target b0 --start a0 --samples 400 --burn-in 50 --domains 2 \
  --trace "$TRACE_TMP/mc.json" examples/chains/barbell.mc > /dev/null
check_trace_json "$TRACE_TMP/mc.json" barbell.mc
echo "ok: --trace files parse as Chrome trace-event JSON"

echo "== fault-injection matrix =="
# Deterministic faults via PROBDB_FAULT: a killed shard fails the run with
# exit 1 naming the shard; two kills name both; a flaky shard is retried
# once and must be bit-transparent; a delayed shard only slows things down.
FAULT_ARGS="run examples/programs/reachability.pdl -s inflationary -m sample"
FAULT_OPTS="--burn-in 20 --eps 0.1 --delta 0.1 --seed 7 -j 4"
status=0
PROBDB_FAULT='kill:shard=3,after=1' "$PROBDL" $FAULT_ARGS $FAULT_OPTS \
  > /dev/null 2> "$TRACE_TMP/kill.err" || status=$?
[ "$status" -eq 1 ] || { echo "fault kill: expected exit 1, got $status" >&2; exit 1; }
grep -q 'shard 3' "$TRACE_TMP/kill.err" \
  || { echo "fault kill: stderr does not name shard 3" >&2; exit 1; }
status=0
PROBDB_FAULT='kill:shard=3,after=1;kill:shard=5,after=0' "$PROBDL" $FAULT_ARGS $FAULT_OPTS \
  > /dev/null 2> "$TRACE_TMP/kill2.err" || status=$?
[ "$status" -eq 1 ] || { echo "fault two-kills: expected exit 1, got $status" >&2; exit 1; }
grep -q 'shard 3' "$TRACE_TMP/kill2.err" && grep -q 'shards 5' "$TRACE_TMP/kill2.err" \
  || { echo "fault two-kills: stderr must name both shards" >&2; exit 1; }
clean=$("$PROBDL" $FAULT_ARGS $FAULT_OPTS | grep '^answer')
flaky=$(PROBDB_FAULT='flaky:shard=2,after=1' "$PROBDL" $FAULT_ARGS $FAULT_OPTS | grep '^answer')
[ "$clean" = "$flaky" ] \
  || { echo "fault flaky: retried run diverged ($flaky vs $clean)" >&2; exit 1; }
delayed=$(PROBDB_FAULT='delay:shard=1,ms=1' "$PROBDL" $FAULT_ARGS $FAULT_OPTS | grep '^answer')
[ "$clean" = "$delayed" ] \
  || { echo "fault delay: delayed run diverged ($delayed vs $clean)" >&2; exit 1; }
echo "ok: kill is fatal and named, flaky retry is transparent, delay is harmless"

echo "== budget / degradation smoke =="
# A sample budget truncates the run: exit 3 and a partial outcome line.
status=0
"$PROBDL" $FAULT_ARGS $FAULT_OPTS --sample-budget 40 > "$TRACE_TMP/partial.out" || status=$?
[ "$status" -eq 3 ] || { echo "sample budget: expected exit 3, got $status" >&2; exit 1; }
grep -q '^outcome   : partial' "$TRACE_TMP/partial.out" \
  || { echo "sample budget: no partial outcome line" >&2; exit 1; }
# Under --on-budget fail the same truncation is an error.
status=0
"$PROBDL" $FAULT_ARGS $FAULT_OPTS --sample-budget 40 --on-budget fail \
  > /dev/null 2>&1 || status=$?
[ "$status" -eq 1 ] || { echo "on-budget fail: expected exit 1, got $status" >&2; exit 1; }
# Under --on-budget fallback an exact run that blows its state budget is
# restarted as a sampler and completes, recording the downgrade in stats/3.
"$PROBDL" run examples/programs/walk_distribution.pdl -s noninflationary -m exact \
  --state-budget 2 --on-budget fallback --eps 0.1 --delta 0.1 --burn-in 50 --seed 7 \
  --stats-json | python3 -c '
import json, sys
doc = json.load(sys.stdin)[0]
dg = doc["downgrade"]
if not dg or dg["from"] != "exact" or dg["to"] != "sampling" or dg["trigger"] != "state-budget":
    sys.exit(f"bad downgrade record {dg!r}")
if doc["outcome"]["status"] != "complete":
    sys.exit(f"fallback run should complete, got {doc['outcome']!r}")
' || { echo "fallback smoke failed" >&2; exit 1; }
# Usage errors are exit 2, distinct from runtime errors (1) and partial (3).
status=0
"$PROBDL" run --no-such-flag > /dev/null 2>&1 || status=$?
[ "$status" -eq 2 ] || { echo "usage: expected exit 2, got $status" >&2; exit 1; }
echo "ok: partial=3, fail-policy=1, fallback downgrades to sampling, usage=2"

echo "== checkpoint / interrupt / resume smoke =="
# SIGINT mid-run must exit 3 and leave a checkpoint from which --resume
# reproduces the uninterrupted answer bit-for-bit.
CKPT_ARGS="run examples/programs/reachability.pdl -s noninflationary -m sample"
CKPT_OPTS="--burn-in 100 --eps 0.02 --delta 0.02 --seed 7 -j 4"
ref=$("$PROBDL" $CKPT_ARGS $CKPT_OPTS | grep '^answer')
"$PROBDL" $CKPT_ARGS $CKPT_OPTS --checkpoint "$TRACE_TMP/ci.ckpt" \
  > "$TRACE_TMP/int.out" 2>&1 &
pid=$!
sleep 1
kill -INT "$pid"
status=0; wait "$pid" || status=$?
[ "$status" -eq 3 ] || { echo "interrupt: expected exit 3, got $status" >&2; exit 1; }
grep -q 'interrupted' "$TRACE_TMP/int.out" \
  || { echo "interrupt: no interrupted outcome in output" >&2; exit 1; }
[ -f "$TRACE_TMP/ci.ckpt" ] || { echo "interrupt: checkpoint not written" >&2; exit 1; }
resumed=$("$PROBDL" $CKPT_ARGS $CKPT_OPTS --resume "$TRACE_TMP/ci.ckpt" | grep '^answer')
[ "$ref" = "$resumed" ] \
  || { echo "resume diverged from uninterrupted run ($resumed vs $ref)" >&2; exit 1; }
echo "ok: SIGINT -> exit 3 + checkpoint; resume is bit-identical ($ref)"

echo "== daemon smoke =="
# Start the query daemon, SIGKILL it to fabricate a genuinely stale socket,
# then check a fresh start cleans the socket up and serves: 4 concurrent
# clients under distinct tenants must each get an answer exact-identical to
# the one-shot CLI, and SIGTERM must drain, exit 0 and remove the socket.
PROBDBD=_build/default/bin/probdbd.exe
DSOCK="$TRACE_TMP/probdbd.sock"
"$PROBDBD" serve --socket "$DSOCK" 2> "$TRACE_TMP/daemon0.err" &
dpid=$!
for _ in 1 2 3 4 5 6 7 8 9 10; do [ -S "$DSOCK" ] && break; sleep 0.2; done
[ -S "$DSOCK" ] || { echo "daemon: first start never bound its socket" >&2; exit 1; }
kill -KILL "$dpid"
wait "$dpid" 2> /dev/null || true
[ -S "$DSOCK" ] || { echo "daemon: SIGKILL should leave the socket behind" >&2; exit 1; }
"$PROBDBD" serve --socket "$DSOCK" 2> "$TRACE_TMP/daemon.err" &
dpid=$!
python3 - "$DSOCK" <<'PY' || { echo "daemon: concurrent client check failed" >&2; exit 1; }
import json, socket, subprocess, sys, threading, time

sock_path = sys.argv[1]
src = open("examples/programs/reachability.pdl").read()
cli = json.loads(
    subprocess.run(
        ["_build/default/bin/probdl.exe", "run",
         "examples/programs/reachability.pdl", "--stats-json"],
        capture_output=True, check=True, text=True).stdout)
want_exact, want_p = cli["exact"], cli["probability"]
errors = []

def client(k):
    s = socket.socket(socket.AF_UNIX)
    for _ in range(100):
        try:
            s.connect(sock_path)
            break
        except OSError:
            time.sleep(0.05)
    else:
        errors.append(f"client {k}: cannot connect")
        return
    f = s.makefile("rw")
    f.write(json.dumps({"op": "query", "id": f"q{k}",
                        "tenant": f"tenant{k}", "source": src}) + "\n")
    f.flush()
    resp = json.loads(f.readline())
    if not resp.get("ok"):
        errors.append(f"client {k}: {resp}")
    elif resp["report"]["exact"] != want_exact or resp["report"]["probability"] != want_p:
        errors.append(f"client {k}: answer diverged from one-shot CLI: {resp['report']['exact']!r}")
    elif resp.get("tenant") != f"tenant{k}":
        errors.append(f"client {k}: wrong tenant echo {resp.get('tenant')!r}")
    s.close()

threads = [threading.Thread(target=client, args=(k,)) for k in range(4)]
for t in threads:
    t.start()
for t in threads:
    t.join()
if errors:
    sys.exit("; ".join(errors))
PY
grep -q 'removing stale socket' "$TRACE_TMP/daemon.err" \
  || { echo "daemon: restart did not report stale-socket cleanup" >&2; exit 1; }
kill -TERM "$dpid"
status=0
wait "$dpid" || status=$?
[ "$status" -eq 0 ] || { echo "daemon: SIGTERM exit $status, want 0" >&2; exit 1; }
[ ! -e "$DSOCK" ] || { echo "daemon: socket left behind after shutdown" >&2; exit 1; }
echo "ok: stale socket reclaimed, 4 tenants answered exactly, SIGTERM drains clean"

echo "== metrics smoke =="
# Telemetry plane end to end: queries from two tenants, then the metrics op
# must expose per-(tenant, class, outcome) histogram families in both the
# probdb.metrics/1 JSON and the Prometheus text, with _count exactly equal
# to the queries issued; probdbd top renders the same document; --log-json
# emits one structured line per request with unique correlation ids.
DSOCK2="$TRACE_TMP/probdbd_metrics.sock"
"$PROBDBD" serve --socket "$DSOCK2" --log-json 2> "$TRACE_TMP/daemon_metrics.log" &
dpid=$!
python3 - "$DSOCK2" <<'PY' || { echo "metrics smoke failed" >&2; exit 1; }
import json, socket, sys, time

sock_path = sys.argv[1]
s = socket.socket(socket.AF_UNIX)
for _ in range(100):
    try:
        s.connect(sock_path)
        break
    except OSError:
        time.sleep(0.05)
else:
    sys.exit("cannot connect to metrics daemon")
f = s.makefile("rw")

def rpc(doc):
    f.write(json.dumps(doc) + "\n")
    f.flush()
    return json.loads(f.readline())

src = "e(a). p(X) :- e(X). ?- p(a)."
issued = {"acme": 3, "zeta": 2}
corrs = set()
for tenant, n in issued.items():
    for i in range(n):
        resp = rpc({"op": "query", "id": f"{tenant}-{i}", "tenant": tenant,
                    "class": "interactive", "source": src})
        if not resp.get("ok"):
            sys.exit(f"query failed: {resp}")
        corr = resp.get("corr")
        if not corr or corr in corrs:
            sys.exit(f"bad or duplicate correlation id {corr!r}")
        corrs.add(corr)

m = rpc({"op": "metrics", "id": "m"})
if not m.get("ok"):
    sys.exit(f"metrics op failed: {m}")
doc, text = m["metrics"], m["prometheus"]
if doc["schema"] != "probdb.metrics/1":
    sys.exit(f"bad metrics schema {doc['schema']!r}")
fams = {fam["name"]: fam for fam in doc["families"]}
for name in ("probdb_requests_total", "probdb_request_seconds",
             "probdb_request_wait_seconds", "probdb_request_compile_seconds",
             "probdb_request_eval_seconds", "probdb_uptime_seconds",
             "probdb_gc_minor_words"):
    if name not in fams:
        sys.exit(f"family {name} missing from JSON document")
hist = fams["probdb_request_seconds"]["rows"]
for tenant, n in issued.items():
    labels = {"tenant": tenant, "class": "interactive", "outcome": "complete"}
    rows = [r for r in hist if r["labels"] == labels]
    if len(rows) != 1 or rows[0]["count"] != n:
        sys.exit(f"histogram count for {tenant}: want {n}, got {rows}")
    needle = (f'probdb_request_seconds_count{{tenant="{tenant}",'
              f'class="interactive",outcome="complete"}} {n}')
    if needle not in text:
        sys.exit(f"prometheus text missing {needle!r}")
if "# TYPE probdb_request_seconds histogram" not in text:
    sys.exit("prometheus text missing the histogram TYPE line")
if 'le="+Inf"' not in text:
    sys.exit("prometheus histogram missing the +Inf bucket")
s.close()
PY
# The live top client renders the same document (single-snapshot mode).
"$PROBDBD" top --socket "$DSOCK2" --once > "$TRACE_TMP/top.out"
grep -q 'acme' "$TRACE_TMP/top.out" && grep -q 'zeta' "$TRACE_TMP/top.out" \
  || { echo "probdbd top --once does not list the tenants" >&2; exit 1; }
kill -TERM "$dpid"
wait "$dpid" || { echo "metrics daemon unclean exit" >&2; exit 1; }
python3 - "$TRACE_TMP/daemon_metrics.log" <<'PY' || { echo "request log check failed" >&2; exit 1; }
import json, sys
reqs = []
for line in open(sys.argv[1]):
    line = line.strip()
    if not line.startswith("{"):
        continue  # the human-readable listening banner
    doc = json.loads(line)
    for key in ("ts", "ts_ns", "level", "event"):
        if key not in doc:
            sys.exit(f"log line missing {key!r}: {doc}")
    if doc["event"] == "request":
        reqs.append(doc)
queries = [d for d in reqs if d.get("op") == "query"]
if len(queries) != 5:
    sys.exit(f"want 5 query log lines, got {len(queries)}")
corrs = {d["corr"] for d in reqs}
if len(corrs) != len(reqs):
    sys.exit("correlation ids not unique across request log lines")
PY
echo "ok: exact per-tenant counts in JSON+Prometheus, top renders, logs carry unique corr ids"

echo "== chaos smoke: journal survives SIGKILL =="
# Crash-safety end to end: a daemon with --state-dir is SIGKILLed mid-traffic
# three times and restarted each time; after the final restart every acked
# load must answer bit-identically to a fault-free daemon, the Prometheus
# text must carry the journal replay counters, and a resilient CLI client
# (--retry) must complete a query against the recovered daemon.
CHAOS_STATE="$TRACE_TMP/chaos_state"
CHAOS_SOCK="$TRACE_TMP/probdbd_chaos.sock"
python3 - "$PROBDBD" "$CHAOS_SOCK" "$CHAOS_STATE" <<'PY' || { echo "chaos smoke failed" >&2; exit 1; }
import json, os, signal, socket, subprocess, sys, time

probdbd, sock_path, state_dir = sys.argv[1:4]

def start():
    return subprocess.Popen([probdbd, "serve", "--socket", sock_path,
                             "--state-dir", state_dir],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)

def answer(report):
    # Only the answer fields: the report also carries timings.
    return (report.get("exact"), report.get("probability"))

def connect():
    s = socket.socket(socket.AF_UNIX)
    for _ in range(200):
        try:
            s.connect(sock_path)
            return s
        except OSError:
            time.sleep(0.05)
    sys.exit("cannot connect to chaos daemon")

def rpc(f, doc):
    f.write(json.dumps(doc) + "\n")
    f.flush()
    return json.loads(f.readline())

def source(i):
    return f"c{i}_0(a).\nc{i}_1(X) :- c{i}_0(X).\n?- c{i}_1(a)."

# Fault-free reference: load + query six programs on a journal-less run
# (fresh state dir, clean shutdown), remembering every report verbatim.
answers = {}
p = start()
s = connect()
f = s.makefile("rw")
for i in range(6):
    r = rpc(f, {"op": "load", "id": f"ref-l{i}", "tenant": "chaos",
                "name": f"n{i}", "source": source(i)})
    if not r.get("ok"):
        sys.exit(f"reference load {i} failed: {r}")
    r = rpc(f, {"op": "query", "id": f"ref-q{i}", "tenant": "chaos",
                "name": f"n{i}"})
    if not r.get("ok"):
        sys.exit(f"reference query {i} failed: {r}")
    answers[f"n{i}"] = answer(r["report"])
s.close()
p.send_signal(signal.SIGTERM)
if p.wait() != 0:
    sys.exit("reference daemon unclean exit")
for fn in os.listdir(state_dir):
    os.unlink(os.path.join(state_dir, fn))

# Chaos run: three generations, each acks one load, fires a query and is
# SIGKILLed without reading the answer.
acked = []
p = start()
try:
    for gen in range(3):
        s = connect()
        fh = s.makefile("rw")
        name = f"n{len(acked)}"
        r = rpc(fh, {"op": "load", "id": f"g{gen}-load", "tenant": "chaos",
                     "name": name, "source": source(len(acked))})
        if not r.get("ok"):
            sys.exit(f"chaos load {name} failed: {r}")
        acked.append(name)
        fh.write(json.dumps({"op": "query", "id": f"g{gen}-q",
                             "tenant": "chaos", "name": name}) + "\n")
        fh.flush()
        p.send_signal(signal.SIGKILL)
        p.wait()
        s.close()
        p = start()

    # After the final restart every acked load answers exactly like the
    # fault-free daemon, and the replay counters are exposed.
    s = connect()
    fh = s.makefile("rw")
    for name in acked:
        r = rpc(fh, {"op": "query", "id": f"final-{name}", "tenant": "chaos",
                     "name": name})
        if not r.get("ok"):
            sys.exit(f"post-crash query {name} failed: {r}")
        if answer(r["report"]) != answers[name]:
            sys.exit(f"post-crash answer diverged for {name}: "
                     f"{answer(r['report'])!r} vs {answers[name]!r}")
    m = rpc(fh, {"op": "metrics", "id": "chaos-m"})
    if not m.get("ok"):
        sys.exit(f"metrics op failed: {m}")
    text = m["prometheus"]
    needle = f"probdb_journal_replayed_records {len(acked)}"
    if needle not in text:
        sys.exit(f"prometheus text missing {needle!r}")
    if "probdb_journal_appends_total" not in text:
        sys.exit("prometheus text missing probdb_journal_appends_total")
    s.close()

    # Resilient CLI leg: --retry rides its idempotency key to an answer.
    out = subprocess.run(
        [probdbd, "client", "--socket", sock_path, "--retry",
         "--deadline-ms", "5000"],
        input=json.dumps({"op": "query", "id": "cli", "tenant": "chaos",
                          "name": "n0"}) + "\n",
        capture_output=True, text=True, check=True, timeout=60).stdout
    resp = json.loads(out.strip())
    if not resp.get("ok") or answer(resp["report"]) != answers["n0"]:
        sys.exit(f"client --retry leg diverged: {out!r}")

    p.send_signal(signal.SIGTERM)
    if p.wait() != 0:
        sys.exit("final chaos daemon unclean exit")
finally:
    if p.poll() is None:
        p.kill()
PY
echo "ok: 3x SIGKILL + restart replays every acked load exactly, --retry client answers"

echo "== bench compare gate =="
BENCH=_build/default/bench/main.exe
latest=$(ls BENCH_*.json | sort | tail -1)
previous=$(ls BENCH_*.json | sort | tail -2 | head -1)
# Self-comparison must pass clean...
"$BENCH" compare "$latest" "$latest" 25 E20 E21 E22 E23 E24 E25 E26 E27 E28 > /dev/null \
  || { echo "bench compare: self-comparison flagged regressions" >&2; exit 1; }
# ...and a copy with every ms multiplied ~10x must trip the gate (the
# perturbation keeps the one-line-per-id layout the parser expects).
sed -E 's/"ms": ([0-9]+)\./"ms": \1\1./g' "$latest" > "$TRACE_TMP/perturbed.json"
if "$BENCH" compare "$latest" "$TRACE_TMP/perturbed.json" 25 E20 E21 E22 E23 E24 E25 E26 E27 E28 > /dev/null; then
  echo "bench compare: failed to flag a 10x regression" >&2
  exit 1
fi
# Day-over-day gate on the guarded experiments (plan compilation wins,
# observability overhead, tracing overhead).
if [ "$previous" != "$latest" ]; then
  "$BENCH" compare "$previous" "$latest" 25 E20 E21 E22 E23 E24 E25 E26 E27 E28 \
    || { echo "bench compare: $previous -> $latest regressed" >&2; exit 1; }
fi
echo "ok: bench compare gates E20/E21/E22/E23/E24/E25/E26/E27/E28 (threshold 25%)"

echo "ci: all green"
