#!/bin/sh
# Continuous-integration entry point: full build + test suite, then a CLI
# smoke pass over every example program in both execution modes (compiled
# physical plans, the default, and --interpreted, the AST-walking ablation
# baseline) asserting identical answers, plus a probmc estimate smoke on
# the example chain files.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

PROBDL=_build/default/bin/probdl.exe
PROBMC=_build/default/bin/probmc.exe

# Per-program semantics: walk kernels and re-flipped pc-tables only make
# sense non-inflationary; everything else runs inflationary.
semantics_of () {
  case "$(basename "$1")" in
    coin_flip.pdl | walk_distribution.pdl) echo noninflationary ;;
    *) echo inflationary ;;
  esac
}

echo "== probdl smoke: plans vs interpreted =="
for prog in examples/programs/*.pdl; do
  sem=$(semantics_of "$prog")
  planned=$("$PROBDL" run "$prog" -s "$sem" --seed 7)
  interpreted=$("$PROBDL" run "$prog" -s "$sem" --seed 7 --interpreted)
  # Only the plan diagnostic row may differ between the two modes.
  if [ "$(printf '%s\n' "$planned" | grep -v '^plan')" != \
       "$(printf '%s\n' "$interpreted" | grep -v '^plan')" ]; then
    echo "MISMATCH between compiled and interpreted on $prog" >&2
    printf '%s\n--- vs ---\n%s\n' "$planned" "$interpreted" >&2
    exit 1
  fi
  echo "ok: $prog ($sem)"
done

echo "== probmc smoke =="
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 \
  examples/chains/barbell.mc > /dev/null
"$PROBMC" estimate --target p3 --start p1 --samples 200 --burn-in 50 \
  examples/chains/gambler.mc > /dev/null
echo "ok: examples/chains/*.mc"

echo "== stats-json smoke =="
# The probdb.stats/1 documents must parse as JSON and carry the core keys.
check_stats_json () {
  python3 -c '
import json, sys
doc = json.load(sys.stdin)
for key in ("engine", "steps", "draws", "elapsed_ms"):
    if key not in doc:
        sys.exit(f"missing key {key!r} in stats JSON")
schema = doc.get("schema")
if schema != "probdb.stats/1":
    sys.exit(f"unexpected schema {schema!r}")
' || { echo "stats JSON check failed for $1" >&2; exit 1; }
}
"$PROBDL" run examples/programs/coin_flip.pdl -s noninflationary --seed 7 --stats-json \
  | check_stats_json coin_flip.pdl
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 --stats-json \
  examples/chains/barbell.mc | check_stats_json barbell.mc
echo "ok: --stats-json documents parse with engine/steps/draws/elapsed_ms"

echo "ci: all green"
