#!/bin/sh
# Continuous-integration entry point: full build + test suite, then a CLI
# smoke pass over every example program in both execution modes (compiled
# physical plans, the default, and --interpreted, the AST-walking ablation
# baseline) asserting identical answers, plus a probmc estimate smoke on
# the example chain files.
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

PROBDL=_build/default/bin/probdl.exe
PROBMC=_build/default/bin/probmc.exe

# Per-program semantics: walk kernels and re-flipped pc-tables only make
# sense non-inflationary; everything else runs inflationary.
semantics_of () {
  case "$(basename "$1")" in
    coin_flip.pdl | walk_distribution.pdl) echo noninflationary ;;
    *) echo inflationary ;;
  esac
}

echo "== probdl smoke: plans vs interpreted =="
for prog in examples/programs/*.pdl; do
  sem=$(semantics_of "$prog")
  planned=$("$PROBDL" run "$prog" -s "$sem" --seed 7)
  interpreted=$("$PROBDL" run "$prog" -s "$sem" --seed 7 --interpreted)
  # Only the plan diagnostic row may differ between the two modes.
  if [ "$(printf '%s\n' "$planned" | grep -v '^plan')" != \
       "$(printf '%s\n' "$interpreted" | grep -v '^plan')" ]; then
    echo "MISMATCH between compiled and interpreted on $prog" >&2
    printf '%s\n--- vs ---\n%s\n' "$planned" "$interpreted" >&2
    exit 1
  fi
  echo "ok: $prog ($sem)"
done

echo "== probmc smoke =="
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 \
  examples/chains/barbell.mc > /dev/null
"$PROBMC" estimate --target p3 --start p1 --samples 200 --burn-in 50 \
  examples/chains/gambler.mc > /dev/null
echo "ok: examples/chains/*.mc"

echo "== stats-json smoke =="
# The probdb.stats/2 documents must parse as JSON and carry the core keys.
check_stats_json () {
  python3 -c '
import json, sys
doc = json.load(sys.stdin)
for key in ("engine", "steps", "draws", "elapsed_ms"):
    if key not in doc:
        sys.exit(f"missing key {key!r} in stats JSON")
schema = doc.get("schema")
if schema != "probdb.stats/2":
    sys.exit(f"unexpected schema {schema!r}")
' || { echo "stats JSON check failed for $1" >&2; exit 1; }
}
"$PROBDL" run examples/programs/coin_flip.pdl -s noninflationary --seed 7 --stats-json \
  | check_stats_json coin_flip.pdl
"$PROBMC" estimate --target b0 --start a0 --samples 200 --burn-in 50 --stats-json \
  examples/chains/barbell.mc | check_stats_json barbell.mc
echo "ok: --stats-json documents parse with engine/steps/draws/elapsed_ms"

echo "== trace smoke =="
# --trace files must be valid Chrome trace-event JSON: known phase values,
# balanced B/E spans per track, non-decreasing integer timestamps per track,
# pid = tid, and the probdb.series/1 block riding along.
TRACE_TMP=$(mktemp -d)
trap 'rm -rf "$TRACE_TMP"' EXIT
check_trace_json () {
  python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
if not events:
    sys.exit("empty traceEvents")
depth, last_ts = {}, {}
for e in events:
    ph, tid, ts = e["ph"], e["tid"], e["ts"]
    if ph not in ("B", "E", "X", "i"):
        sys.exit(f"unknown ph {ph!r}")
    if not isinstance(ts, int) or ts < 0:
        sys.exit(f"bad ts {ts!r}")
    if e["pid"] != tid:
        sys.exit("pid != tid")
    if ts < last_ts.get(tid, 0):
        sys.exit(f"ts went backwards on tid {tid}")
    last_ts[tid] = ts
    if ph == "B":
        depth[tid] = depth.get(tid, 0) + 1
    elif ph == "E":
        depth[tid] = depth.get(tid, 0) - 1
        if depth[tid] < 0:
            sys.exit(f"E without B on tid {tid}")
    elif ph == "X" and (not isinstance(e["dur"], int) or e["dur"] < 0):
        sys.exit(f"bad dur {e['dur']!r}")
for tid, d in depth.items():
    if d != 0:
        sys.exit(f"unbalanced spans on tid {tid}")
if doc["series"]["schema"] != "probdb.series/1":
    sys.exit(f"unexpected series schema {doc['series']['schema']!r}")
' "$1" || { echo "trace JSON check failed for $2" >&2; exit 1; }
}
# Exact chain construction (the E4 shape): per-BFS-level instants.
"$PROBDL" run examples/programs/walk_distribution.pdl -s noninflationary --seed 7 \
  --trace "$TRACE_TMP/pdl.json" > /dev/null
check_trace_json "$TRACE_TMP/pdl.json" walk_distribution.pdl
# Sharded sampling: one pool.shard span per shard plus estimate series.
"$PROBMC" estimate --target b0 --start a0 --samples 400 --burn-in 50 --domains 2 \
  --trace "$TRACE_TMP/mc.json" examples/chains/barbell.mc > /dev/null
check_trace_json "$TRACE_TMP/mc.json" barbell.mc
echo "ok: --trace files parse as Chrome trace-event JSON"

echo "== bench compare gate =="
BENCH=_build/default/bench/main.exe
latest=$(ls BENCH_*.json | sort | tail -1)
previous=$(ls BENCH_*.json | sort | tail -2 | head -1)
# Self-comparison must pass clean...
"$BENCH" compare "$latest" "$latest" 25 E20 E21 E22 > /dev/null \
  || { echo "bench compare: self-comparison flagged regressions" >&2; exit 1; }
# ...and a copy with every ms multiplied ~10x must trip the gate (the
# perturbation keeps the one-line-per-id layout the parser expects).
sed -E 's/"ms": ([0-9]+)\./"ms": \1\1./g' "$latest" > "$TRACE_TMP/perturbed.json"
if "$BENCH" compare "$latest" "$TRACE_TMP/perturbed.json" 25 E20 E21 E22 > /dev/null; then
  echo "bench compare: failed to flag a 10x regression" >&2
  exit 1
fi
# Day-over-day gate on the guarded experiments (plan compilation wins,
# observability overhead, tracing overhead).
if [ "$previous" != "$latest" ]; then
  "$BENCH" compare "$previous" "$latest" 25 E20 E21 E22 \
    || { echo "bench compare: $previous -> $latest regressed" >&2; exit 1; }
fi
echo "ok: bench compare gates E20/E21/E22 (threshold 25%)"

echo "ci: all green"
